package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runSim(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func TestWaveModel(t *testing.T) {
	out, err := runSim(t, "-net", "omega", "-n", "4", "-model", "wave", "-waves", "20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "omega n=4") || !strings.Contains(out, "throughput") {
		t.Errorf("wave output wrong:\n%s", out)
	}
}

func TestWavePatterns(t *testing.T) {
	for _, p := range []string{"uniform", "permutation", "bitreversal", "hotspot"} {
		if _, err := runSim(t, "-n", "3", "-model", "wave", "-waves", "5", "-pattern", p); err != nil {
			t.Errorf("pattern %s: %v", p, err)
		}
	}
	if _, err := runSim(t, "-model", "wave", "-pattern", "nope", "-n", "3"); err == nil {
		t.Error("unknown pattern accepted")
	}
}

func TestBufferedModel(t *testing.T) {
	out, err := runSim(t, "-net", "flip", "-n", "3", "-model", "buffered",
		"-cycles", "200", "-warmup", "20", "-load", "0.5")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"buffered", "mean latency", "injected"} {
		if !strings.Contains(out, want) {
			t.Errorf("buffered output missing %q:\n%s", want, out)
		}
	}
}

func TestCounterFlag(t *testing.T) {
	out, err := runSim(t, "-counter", "-n", "4", "-model", "wave", "-waves", "10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "tail-cycle") {
		t.Errorf("counter output wrong:\n%s", out)
	}
}

func TestPatternListing(t *testing.T) {
	out, err := runSim(t, "-patterns")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uniform", "tornado", "transpose", "neighbor", "bursty"} {
		if !strings.Contains(out, want) {
			t.Errorf("pattern listing missing %q:\n%s", want, out)
		}
	}
}

func TestNewPatterns(t *testing.T) {
	for _, p := range []string{"tornado", "transpose", "neighbor", "bursty", "bernoulli"} {
		if _, err := runSim(t, "-n", "3", "-model", "wave", "-waves", "5", "-pattern", p); err != nil {
			t.Errorf("pattern %s: %v", p, err)
		}
	}
}

func TestSweepMode(t *testing.T) {
	out, err := runSim(t, "-sweep", "-n", "3", "-waves", "10", "-loads", "0.5,1.0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "sweep: wave model") || !strings.Contains(out, "load=0.50") {
		t.Errorf("sweep output wrong:\n%s", out)
	}
	for _, net := range []string{"omega", "baseline", "flip"} {
		if !strings.Contains(out, net) {
			t.Errorf("sweep missing network %s:\n%s", net, out)
		}
	}
	out, err = runSim(t, "-sweep", "-model", "buffered", "-n", "3", "-cycles", "100",
		"-warmup", "10", "-nets", "omega,flip", "-loads", "0.4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "buffered model") || strings.Contains(out, "baseline") {
		t.Errorf("restricted buffered sweep wrong:\n%s", out)
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-loads", "abc"); err == nil {
		t.Error("bad load list accepted")
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-model", "nope"); err == nil {
		t.Error("bad sweep model accepted")
	}
	// Flags the sweep would silently drop must be rejected, and list
	// values must tolerate whitespace after commas.
	if _, err := runSim(t, "-sweep", "-counter", "-n", "3"); err == nil {
		t.Error("-sweep -counter accepted")
	}
	if _, err := runSim(t, "-sweep", "-pattern", "tornado", "-n", "3"); err == nil {
		t.Error("-sweep -pattern accepted")
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-waves", "5",
		"-nets", "omega, flip", "-loads", "0.5, 1.0"); err != nil {
		t.Errorf("whitespace in list flags rejected: %v", err)
	}
}

func TestBufferedLanesAndPattern(t *testing.T) {
	out, err := runSim(t, "-net", "omega", "-n", "3", "-model", "buffered",
		"-cycles", "300", "-warmup", "30", "-load", "0.8", "-lanes", "2",
		"-pattern", "transpose")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"transpose traffic", "lanes 2", "p50", "p95", "p99",
		"dropped", "max lane occupancy", "mean stage occupancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("buffered output missing %q:\n%s", want, out)
		}
	}
	// Load-aware patterns run too (no double thinning blow-up).
	if _, err := runSim(t, "-n", "3", "-model", "buffered", "-cycles", "100",
		"-warmup", "10", "-pattern", "bursty"); err != nil {
		t.Errorf("bursty buffered run: %v", err)
	}
	if _, err := runSim(t, "-n", "3", "-model", "buffered", "-pattern", "nope"); err == nil {
		t.Error("unknown buffered pattern accepted")
	}
}

func TestBufferedSweepGrid(t *testing.T) {
	out, err := runSim(t, "-sweep", "-model", "buffered", "-n", "3", "-cycles", "100",
		"-warmup", "10", "-nets", "omega", "-loads", "0.4,0.9",
		"-queues", "1,4", "-lanegrid", "1,2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 networks x 2 loads x 2 queues x 2 lanes") {
		t.Errorf("grid header wrong:\n%s", out)
	}
	// One long-format row per (queue, lanes, load) grid point, each
	// carrying loss and latency percentiles, not only throughput.
	if rows := strings.Count(out, "omega"); rows != 8 {
		t.Errorf("want 8 omega rows, got %d:\n%s", rows, out)
	}
	for _, col := range []string{"throughput", "dropped", "rejected", "p50/p95/p99"} {
		if !strings.Contains(out, col) {
			t.Errorf("buffered sweep missing %q column:\n%s", col, out)
		}
	}
	if _, err := runSim(t, "-sweep", "-model", "buffered", "-n", "3", "-queues", "abc"); err == nil {
		t.Error("bad queue list accepted")
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-queues", "2"); err == nil {
		t.Error("-queues accepted for the wave sweep")
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-lanegrid", "2"); err == nil {
		t.Error("-lanegrid accepted for the wave sweep")
	}
}

func TestWorkerCountInvariance(t *testing.T) {
	one, err := runSim(t, "-n", "4", "-waves", "50", "-workers", "1", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	four, err := runSim(t, "-n", "4", "-waves", "50", "-workers", "4", "-seed", "9")
	if err != nil {
		t.Fatal(err)
	}
	if one != four {
		t.Fatalf("output depends on worker count:\n%s\nvs\n%s", one, four)
	}
}

func TestSimErrors(t *testing.T) {
	if _, err := runSim(t, "-net", "nope", "-n", "3"); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := runSim(t, "-model", "nope", "-n", "3"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := runSim(t, "-counter", "-n", "2"); err == nil {
		t.Error("n=2 counterexample accepted")
	}
	if _, err := runSim(t, "-model", "buffered", "-n", "3", "-queue", "0"); err == nil {
		t.Error("zero queue accepted")
	}
}

func TestFaultsFlag(t *testing.T) {
	// Random rates degrade a wave run and report the fault kills.
	out, err := runSim(t, "-net", "omega", "-n", "4", "-model", "wave", "-waves", "30",
		"-faults", "dead=0.05,link=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "faults: dead=0.05,link=0.02") || !strings.Contains(out, "killed by faults") {
		t.Errorf("fault summary missing:\n%s", out)
	}
	// Pinned faults work on the buffered model too.
	out, err = runSim(t, "-net", "omega", "-n", "3", "-model", "buffered",
		"-cycles", "100", "-warmup", "10", "-faults", "dead@1:0, stuck0@0:1, link@2:3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "killed by faults") {
		t.Errorf("buffered fault summary missing:\n%s", out)
	}
	// Degraded runs are reproducible from (seed, plan).
	a, err := runSim(t, "-n", "4", "-waves", "40", "-seed", "5", "-workers", "1", "-faults", "dead=0.1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runSim(t, "-n", "4", "-waves", "40", "-seed", "5", "-workers", "3", "-faults", "dead=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("degraded output depends on worker count:\n%s\nvs\n%s", a, b)
	}
	// Bad specs are rejected.
	for _, bad := range []string{"dead", "dead=x", "nope=0.1", "dead@3", "dead@a:b", "stuck2@0:0", "dead=2"} {
		if _, err := runSim(t, "-n", "3", "-faults", bad); err == nil {
			t.Errorf("fault spec %q accepted", bad)
		}
	}
	// -faultrates belongs to -sweep; -faults belongs to single runs.
	if _, err := runSim(t, "-n", "3", "-faultrates", "0.1"); err == nil {
		t.Error("-faultrates accepted without -sweep")
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-faults", "dead=0.1"); err == nil {
		t.Error("-faults accepted with -sweep")
	}
}

func TestFaultRateSweepAxis(t *testing.T) {
	out, err := runSim(t, "-sweep", "-n", "3", "-waves", "10", "-nets", "omega",
		"-loads", "0.5,1.0", "-faultrates", "0,0.1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "2 fault rates") || !strings.Contains(out, "dead") {
		t.Errorf("fault axis header missing:\n%s", out)
	}
	// One row per (network, rate).
	if rows := strings.Count(out, "omega"); rows != 2 {
		t.Errorf("want 2 omega rows, got %d:\n%s", rows, out)
	}
	// Buffered degradation sweep runs too.
	out, err = runSim(t, "-sweep", "-model", "buffered", "-n", "3", "-cycles", "80",
		"-warmup", "10", "-nets", "omega", "-loads", "0.6", "-faultrates", "0,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if rows := strings.Count(out, "omega"); rows != 2 {
		t.Errorf("want 2 buffered omega rows, got %d:\n%s", rows, out)
	}
	if _, err := runSim(t, "-sweep", "-n", "3", "-faultrates", "abc"); err == nil {
		t.Error("bad fault-rate list accepted")
	}
}

func TestKernelFlag(t *testing.T) {
	args := []string{"-net", "omega", "-n", "5", "-model", "wave", "-waves", "100", "-seed", "3"}
	base, err := runSim(t, append(args, "-kernel", "scalar")...)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"auto", "bit"} {
		out, err := runSim(t, append(args, "-kernel", k)...)
		if err != nil {
			t.Fatalf("-kernel %s: %v", k, err)
		}
		if out != base {
			t.Errorf("-kernel %s changed the output:\n%s\nvs\n%s", k, out, base)
		}
	}
	if _, err := runSim(t, append(args, "-kernel", "simd")...); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := runSim(t, "-n", "3", "-model", "buffered", "-cycles", "100", "-kernel", "bit"); err == nil {
		t.Error("-kernel accepted for the buffered model")
	}
}
