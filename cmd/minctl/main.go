// Command minctl inspects multistage interconnection networks: build the
// classical networks, check the paper's characterization, construct
// isomorphisms, draw figures, and route packets.
//
// Usage:
//
//	minctl list
//	minctl draw     -net omega -n 4 [-tuples]
//	minctl check    -net flip -n 5
//	minctl equiv    -net omega -net2 baseline -n 5
//	minctl iso      -net indirect-binary-cube -n 4
//	minctl route    -net omega -n 4 -src 3 -dst 12
//	minctl windows  -net baseline -n 5
//	minctl counter  -n 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"minequiv/internal/ascii"
	"minequiv/internal/equiv"
	"minequiv/internal/randnet"
	"minequiv/internal/route"
	"minequiv/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minctl:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (list, draw, check, equiv, iso, route, windows, counter)")
	}
	sub := args[0]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	netName := fs.String("net", topology.NameBaseline, "network name")
	netName2 := fs.String("net2", topology.NameOmega, "second network name (equiv)")
	n := fs.Int("n", 4, "number of stages")
	tuples := fs.Bool("tuples", false, "print labels as binary tuples")
	src := fs.Uint64("src", 0, "source terminal (route)")
	dst := fs.Uint64("dst", 0, "destination terminal (route)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch sub {
	case "list":
		for _, name := range topology.Names() {
			fmt.Fprintln(w, name)
		}
		return nil

	case "draw":
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, ascii.Network(nw.Graph, ascii.Options{
			Title: fmt.Sprintf("%s, n=%d", nw.Name, *n), Tuples: *tuples, OneBased: true}))
		return nil

	case "check":
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, equiv.Check(nw.Graph).String())
		return nil

	case "windows":
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, ascii.WindowResults(nw.Graph.CheckAllWindows()))
		return nil

	case "equiv":
		a, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		b, err := topology.Build(*netName2, *n)
		if err != nil {
			return err
		}
		iso, err := equiv.IsoBetween(a.Graph, b.Graph)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s and %s (n=%d) are topologically equivalent.\n", a.Name, b.Name, *n)
		fmt.Fprintf(w, "stage-0 node mapping: %v\n", iso.Maps[0])
		return nil

	case "iso":
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		iso, err := equiv.IsoToBaseline(nw.Graph)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "isomorphism %s -> baseline (n=%d):\n", nw.Name, *n)
		for s, m := range iso.Maps {
			fmt.Fprintf(w, "stage %d: %v\n", s+1, []uint64(m))
		}
		return nil

	case "route":
		nw, err := topology.Build(*netName, *n)
		if err != nil {
			return err
		}
		r, err := route.NewRouter(nw.IndexPerms)
		if err != nil {
			return err
		}
		p, err := r.Route(*src, *dst)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: route %d -> %d (tag bits %v)\n", nw.Name, *src, *dst, r.TagPositions())
		for _, st := range p.Steps {
			fmt.Fprintf(w, "  stage %d: cell %d, in port %d, out port %d\n",
				st.Stage+1, st.Cell, st.InPort, st.OutPort)
		}
		return nil

	case "counter":
		g, err := randnet.TailCycleBanyan(*n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "tail-cycle counterexample, n=%d:\n", *n)
		fmt.Fprint(w, equiv.Check(g).String())
		fmt.Fprint(w, ascii.WindowResults(g.CheckAllWindows()))
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}
