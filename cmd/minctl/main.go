// Command minctl inspects multistage interconnection networks through
// the public min API: build the classical networks, check the paper's
// characterization, construct isomorphisms, draw figures, route
// packets, and run quick simulations.
//
// Usage:
//
//	minctl list
//	minctl draw     -net omega -n 4 [-tuples]
//	minctl check    -net flip -n 5
//	minctl equiv    -net omega -net2 baseline -n 5
//	minctl iso      -net indirect-binary-cube -n 4
//	minctl route    -net omega -n 4 -src 3 -dst 12
//	minctl windows  -net baseline -n 5
//	minctl counter  -n 5
//	minctl sim      -net omega -n 6 -model wave -waves 500 -pattern uniform
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"minequiv/min"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minctl:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (list, draw, check, equiv, iso, route, windows, counter, sim)")
	}
	sub := args[0]
	fs := flag.NewFlagSet(sub, flag.ContinueOnError)
	netName := fs.String("net", min.Baseline, "network name")
	netName2 := fs.String("net2", min.Omega, "second network name (equiv)")
	n := fs.Int("n", 4, "number of stages")
	tuples := fs.Bool("tuples", false, "print labels as binary tuples")
	src := fs.Int("src", 0, "source terminal (route)")
	dst := fs.Int("dst", 0, "destination terminal (route)")
	model := fs.String("model", "wave", "wave or buffered (sim)")
	pattern := fs.String("pattern", "uniform", "traffic scenario (sim)")
	waves := fs.Int("waves", 500, "waves (sim, wave model)")
	load := fs.Float64("load", 0.6, "offered load (sim, buffered model)")
	queue := fs.Int("queue", 4, "queue capacity per lane (sim, buffered model)")
	lanes := fs.Int("lanes", 1, "FIFO lanes per input port (sim, buffered model)")
	cycles := fs.Int("cycles", 5000, "measured cycles (sim, buffered model)")
	warmup := fs.Int("warmup", 500, "warmup cycles (sim, buffered model)")
	seed := fs.Uint64("seed", 1, "root rng seed (sim)")
	workers := fs.Int("workers", 0, "parallel workers, 0 = GOMAXPROCS (sim)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}

	switch sub {
	case "list":
		for _, info := range min.Catalog() {
			fmt.Fprintf(w, "%-28s %s\n", info.Name, info.Description)
		}
		return nil

	case "draw":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, nw.Draw(min.DrawOptions{
			Title: fmt.Sprintf("%s, n=%d", nw.Name(), *n), Tuples: *tuples, OneBased: true}))
		return nil

	case "check":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		fmt.Fprint(w, min.Check(nw).String())
		return nil

	case "windows":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		printWindows(w, min.CheckAllWindows(nw))
		return nil

	case "equiv":
		a, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		b, err := min.Build(*netName2, *n)
		if err != nil {
			return err
		}
		iso, err := min.IsoBetween(a, b)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s and %s (n=%d) are topologically equivalent.\n", a.Name(), b.Name(), *n)
		fmt.Fprintf(w, "stage-0 node mapping: %v\n", iso.Maps[0])
		return nil

	case "iso":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		iso, err := min.Iso(nw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "isomorphism %s -> baseline (n=%d):\n", nw.Name(), *n)
		for s, m := range iso.Maps {
			fmt.Fprintf(w, "stage %d: %v\n", s+1, m)
		}
		return nil

	case "route":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		p, err := min.Route(nw, *src, *dst)
		if err != nil {
			return err
		}
		tags, err := min.TagPositions(nw)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: route %d -> %d (tag bits %v)\n", nw.Name(), *src, *dst, tags)
		for _, h := range p.Hops {
			fmt.Fprintf(w, "  stage %d: cell %d, in port %d, out port %d\n",
				h.Stage+1, h.Cell, h.InPort, h.OutPort)
		}
		return nil

	case "counter":
		nw, err := min.TailCycle(*n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "tail-cycle counterexample, n=%d:\n", *n)
		fmt.Fprint(w, min.Check(nw).String())
		printWindows(w, min.CheckAllWindows(nw))
		return nil

	case "sim":
		nw, err := min.Build(*netName, *n)
		if err != nil {
			return err
		}
		common := []min.Option{
			min.WithScenario(*pattern), min.WithSeed(*seed), min.WithWorkers(*workers),
		}
		switch *model {
		case "wave":
			st, err := min.Simulate(ctx, nw, append(common, min.WithWaves(*waves))...)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s n=%d (N=%d), %s traffic, %d waves: throughput %.4f ± %.4f\n",
				st.Network, st.Stages, st.Terminals, st.Scenario, st.Waves,
				st.Throughput.Mean, st.Throughput.CI95)
			return nil
		case "buffered":
			st, err := min.SimulateBuffered(ctx, nw, append(common,
				min.WithLoad(*load), min.WithQueue(*queue), min.WithLanes(*lanes),
				min.WithCycles(*cycles), min.WithWarmup(*warmup))...)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%s n=%d (N=%d), buffered, %s traffic, load %.2f: throughput %.4f ± %.4f, mean latency %.2f cycles\n",
				st.Network, st.Stages, st.Terminals, st.Scenario, *load,
				st.Throughput.Mean, st.Throughput.CI95, st.Latency.Mean)
			return nil
		default:
			return fmt.Errorf("unknown model %q", *model)
		}

	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

// printWindows renders a P(i,j) window table, one window per line.
func printWindows(w io.Writer, rs []min.WindowCheck) {
	for _, r := range rs {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
