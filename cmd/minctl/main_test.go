package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := run(context.Background(), args, &buf)
	return buf.String(), err
}

func TestSim(t *testing.T) {
	out, err := runCmd(t, "sim", "-net", "omega", "-n", "4", "-model", "wave", "-waves", "20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "omega n=4") || !strings.Contains(out, "throughput") {
		t.Errorf("sim wave output wrong:\n%s", out)
	}
	out, err = runCmd(t, "sim", "-net", "flip", "-n", "3", "-model", "buffered",
		"-cycles", "200", "-warmup", "20", "-load", "0.5", "-pattern", "transpose")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "buffered, transpose traffic") || !strings.Contains(out, "mean latency") {
		t.Errorf("sim buffered output wrong:\n%s", out)
	}
	if _, err := runCmd(t, "sim", "-model", "nope"); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := runCmd(t, "sim", "-pattern", "nope"); err == nil {
		t.Error("unknown pattern accepted")
	}
	// Determinism surfaces through the CLI too.
	a, err := runCmd(t, "sim", "-n", "4", "-waves", "30", "-seed", "5", "-workers", "1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := runCmd(t, "sim", "-n", "4", "-waves", "30", "-seed", "5", "-workers", "3")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("sim output depends on worker count:\n%s\nvs\n%s", a, b)
	}
}

func TestList(t *testing.T) {
	out, err := runCmd(t, "list")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"baseline", "omega", "flip", "indirect-binary-cube"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %q", want)
		}
	}
}

func TestDraw(t *testing.T) {
	out, err := runCmd(t, "draw", "-net", "omega", "-n", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "omega, n=3") || !strings.Contains(out, "stage 1 -> 2:") {
		t.Errorf("draw output wrong:\n%s", out)
	}
	out, err = runCmd(t, "draw", "-net", "baseline", "-n", "3", "-tuples")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(0,0)") {
		t.Errorf("tuples flag ignored:\n%s", out)
	}
}

func TestCheck(t *testing.T) {
	out, err := runCmd(t, "check", "-net", "flip", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "baseline-equivalent") || strings.Contains(out, "NOT") {
		t.Errorf("check output wrong:\n%s", out)
	}
}

func TestWindows(t *testing.T) {
	out, err := runCmd(t, "windows", "-net", "baseline", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(1,4)") || strings.Contains(out, "VIOLATED") {
		t.Errorf("windows output wrong:\n%s", out)
	}
}

func TestEquiv(t *testing.T) {
	out, err := runCmd(t, "equiv", "-net", "omega", "-net2", "flip", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "topologically equivalent") {
		t.Errorf("equiv output wrong:\n%s", out)
	}
}

func TestIso(t *testing.T) {
	out, err := runCmd(t, "iso", "-net", "modified-data-manipulator", "-n", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "isomorphism modified-data-manipulator -> baseline") {
		t.Errorf("iso output wrong:\n%s", out)
	}
	if !strings.Contains(out, "stage 3:") {
		t.Errorf("iso missing stage maps:\n%s", out)
	}
}

func TestRoute(t *testing.T) {
	out, err := runCmd(t, "route", "-net", "omega", "-n", "4", "-src", "5", "-dst", "12")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "route 5 -> 12") || !strings.Contains(out, "stage 4:") {
		t.Errorf("route output wrong:\n%s", out)
	}
}

func TestCounter(t *testing.T) {
	out, err := runCmd(t, "counter", "-n", "4")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOT baseline-equivalent") || !strings.Contains(out, "VIOLATED") {
		t.Errorf("counter output wrong:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := runCmd(t); err == nil {
		t.Error("no subcommand accepted")
	}
	if _, err := runCmd(t, "frobnicate"); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if _, err := runCmd(t, "draw", "-net", "nope"); err == nil {
		t.Error("unknown network accepted")
	}
	if _, err := runCmd(t, "route", "-net", "omega", "-n", "3", "-src", "99", "-dst", "0"); err == nil {
		t.Error("out-of-range terminal accepted")
	}
	if _, err := runCmd(t, "counter", "-n", "2"); err == nil {
		t.Error("n=2 counterexample accepted")
	}
}
