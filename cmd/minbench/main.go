// Command minbench regenerates every figure and experiment table of the
// reproduction (see EXPERIMENTS.md).
//
// Usage:
//
//	minbench                 # run everything
//	minbench list            # list experiment IDs
//	minbench T1 F5 ...       # run selected experiments
//	minbench -workers 4 T1   # bound the parallel experiments' goroutines
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"minequiv/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minbench:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minbench", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	workers := fs.Int("workers", 0, "goroutines for parallelized experiments (<= 0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.Workers = *workers
	args = fs.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-5s %s\n", e.ID, e.Title)
		}
		return nil
	}
	if len(args) == 0 {
		return experiments.RunAll(w)
	}
	for _, id := range args {
		e, ok := experiments.ByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try `minbench list`)", id)
		}
		if err := experiments.RunOne(w, e); err != nil {
			return err
		}
	}
	return nil
}
