package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListSubcommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"F1", "F5", "T1", "T12"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"F5"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "theta^-1(0) = 0") {
		t.Errorf("F5 output wrong:\n%s", buf.String())
	}
}

func TestMultipleExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"F1", "F2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig 1") || !strings.Contains(buf.String(), "Fig 2") {
		t.Error("multi-run missing experiments")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"T99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestWorkersFlagDeterministicT1(t *testing.T) {
	var one, four bytes.Buffer
	if err := run([]string{"-workers", "1", "T1"}, &one); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-workers", "4", "T1"}, &four); err != nil {
		t.Fatal(err)
	}
	if one.String() != four.String() {
		t.Error("T1 output differs across worker counts")
	}
	if !strings.Contains(one.String(), "pairwise equivalence matrix") {
		t.Errorf("T1 output wrong:\n%s", one.String())
	}
}
