package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: minequiv
cpu: Intel(R) Xeon(R)
BenchmarkEngineWaveLoop-8   	   14175	     79895 ns/op	       0 B/op	       0 allocs/op
BenchmarkBufferedRunner-8   	     229	   5175954 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineThroughput/workers=4-8         	     100	    123456 ns/op
BenchmarkLeaky-8            	     100	      9999 ns/op	      64 B/op	       3 allocs/op
PASS
ok  	minequiv	2.292s
`

func TestParse(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benches, want 4", len(benches))
	}
	wave := benches[0]
	if wave.Name != "BenchmarkEngineWaveLoop" || wave.RawName != "BenchmarkEngineWaveLoop-8" ||
		wave.Iterations != 14175 ||
		wave.NsPerOp != 79895 || wave.AllocsPerOp != 0 || !wave.HasMem {
		t.Fatalf("wave row wrong: %+v", wave)
	}
	if benches[2].Name != "BenchmarkEngineThroughput/workers=4" || benches[2].HasMem {
		t.Fatalf("sub-benchmark row wrong: %+v", benches[2])
	}
	if benches[3].AllocsPerOp != 3 || benches[3].BytesPerOp != 64 {
		t.Fatalf("leaky row wrong: %+v", benches[3])
	}
}

func TestGate(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGate(benches, "BenchmarkEngineWaveLoop,BenchmarkBufferedRunner"); err != nil {
		t.Fatalf("clean gate failed: %v", err)
	}
	if err := checkGate(benches, "BenchmarkLeaky"); err == nil {
		t.Fatal("allocating benchmark passed the gate")
	}
	if err := checkGate(benches, "BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark passed the gate")
	}
	if err := checkGate(benches, "BenchmarkEngineThroughput/workers=4"); err == nil {
		t.Fatal("benchmark without -benchmem columns passed the gate")
	}
	if err := checkGate(benches, ""); err != nil {
		t.Fatalf("empty gate failed: %v", err)
	}
	// A sub-benchmark with a numeric tail and no -GOMAXPROCS suffix
	// (e.g. under -cpu 1) must still be addressable by its raw name.
	cpu1, err := parse(strings.NewReader(
		"BenchmarkSweep/queue-4   \t     100\t      9999 ns/op\t       0 B/op\t       0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGate(cpu1, "BenchmarkSweep/queue-4"); err != nil {
		t.Fatalf("raw-name gate match failed: %v", err)
	}
}

func TestRunWritesArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout bytes.Buffer
	err := run([]string{"-o", path, "-fail-on-allocs", "BenchmarkEngineWaveLoop"},
		strings.NewReader(sample), &stdout)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var benches []Bench
	if err := json.Unmarshal(blob, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("artifact has %d rows, want 4", len(benches))
	}
	// Gate failure still writes the artifact, then errors.
	err = run([]string{"-o", path, "-fail-on-allocs", "BenchmarkLeaky"},
		strings.NewReader(sample), &stdout)
	if err == nil || !strings.Contains(err.Error(), "allocs/op, want 0") {
		t.Fatalf("gate error missing: %v", err)
	}
	// Stdout mode.
	stdout.Reset()
	if err := run([]string{}, strings.NewReader(sample), &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "BenchmarkBufferedRunner") {
		t.Fatal("stdout artifact missing rows")
	}
	// Empty input is an error.
	if err := run([]string{}, strings.NewReader("PASS\n"), &stdout); err == nil {
		t.Fatal("empty input accepted")
	}
}

func writeBaseline(t *testing.T, benches []Bench) string {
	t.Helper()
	blob, err := json.Marshal(benches)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BASE.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineGate(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Identical baseline: clean.
	if err := checkBaseline(benches, writeBaseline(t, benches), 20, ""); err != nil {
		t.Fatalf("identical baseline failed: %v", err)
	}
	// Current run 25% slower than baseline: fails at 20%, passes at 30%.
	slow := writeBaseline(t, []Bench{{Name: "BenchmarkEngineWaveLoop", NsPerOp: 79895 / 1.25}})
	if err := checkBaseline(benches, slow, 20, ""); err == nil ||
		!strings.Contains(err.Error(), "BenchmarkEngineWaveLoop") {
		t.Fatalf("25%% regression passed the 20%% gate: %v", err)
	}
	if err := checkBaseline(benches, slow, 30, ""); err != nil {
		t.Fatalf("25%% regression failed the 30%% gate: %v", err)
	}
	// Benchmarks only in one file are ignored; improvements always pass.
	extra := writeBaseline(t, []Bench{
		{Name: "BenchmarkRetired", NsPerOp: 1},
		{Name: "BenchmarkBufferedRunner", NsPerOp: 99999999},
	})
	if err := checkBaseline(benches, extra, 20, ""); err != nil {
		t.Fatalf("disjoint/improved baseline failed: %v", err)
	}
	// No baseline flag: no-op.
	if err := checkBaseline(benches, "", 20, ""); err != nil {
		t.Fatalf("empty baseline path failed: %v", err)
	}
	// Missing or malformed baseline files are loud errors.
	if err := checkBaseline(benches, filepath.Join(t.TempDir(), "nope.json"), 20, ""); err == nil {
		t.Fatal("missing baseline accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := checkBaseline(benches, bad, 20, ""); err == nil {
		t.Fatal("malformed baseline accepted")
	}
}

func TestRunBaselineFlag(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	base := writeBaseline(t, []Bench{{Name: "BenchmarkBufferedRunner", NsPerOp: 1}})
	var stdout bytes.Buffer
	err = run([]string{"-o", filepath.Join(t.TempDir(), "B.json"), "-baseline", base},
		strings.NewReader(sample), &stdout)
	if err == nil || !strings.Contains(err.Error(), "regression gate failed") {
		t.Fatalf("regression not surfaced through run: %v", err)
	}
	// The artifact is still written before the gate fires.
	ok := writeBaseline(t, benches)
	if err := run([]string{"-o", filepath.Join(t.TempDir(), "B.json"), "-baseline", ok, "-max-regress", "20"},
		strings.NewReader(sample), &stdout); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineNormalize(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// A baseline recorded on a machine exactly 2x faster than the
	// current one: every benchmark doubled uniformly. Raw comparison
	// fails; normalized by the reference loop it is clean.
	half := writeBaseline(t, []Bench{
		{Name: "BenchmarkEngineWaveLoop", NsPerOp: 79895 / 2},
		{Name: "BenchmarkBufferedRunner", NsPerOp: 5175954 / 2},
	})
	if err := checkBaseline(benches, half, 20, ""); err == nil {
		t.Fatal("uniform 2x slowdown passed the raw gate")
	}
	if err := checkBaseline(benches, half, 20, "BenchmarkEngineWaveLoop"); err != nil {
		t.Fatalf("uniform slowdown failed the normalized gate: %v", err)
	}
	// A genuine relative regression still fails: the runner got 2x
	// slower while the reference stayed on the 2x-faster scale.
	skew := writeBaseline(t, []Bench{
		{Name: "BenchmarkEngineWaveLoop", NsPerOp: 79895 / 2},
		{Name: "BenchmarkBufferedRunner", NsPerOp: 5175954 / 4},
	})
	err = checkBaseline(benches, skew, 20, "BenchmarkEngineWaveLoop")
	if err == nil || !strings.Contains(err.Error(), "BenchmarkBufferedRunner") {
		t.Fatalf("relative regression passed the normalized gate: %v", err)
	}
	// The reference must exist on both sides.
	if err := checkBaseline(benches, half, 20, "BenchmarkMissing"); err == nil {
		t.Fatal("missing normalize reference accepted")
	}
	onlyOther := writeBaseline(t, []Bench{{Name: "BenchmarkBufferedRunner", NsPerOp: 1}})
	if err := checkBaseline(benches, onlyOther, 20, "BenchmarkEngineWaveLoop"); err == nil {
		t.Fatal("normalize reference absent from baseline accepted")
	}
}
