package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: minequiv
cpu: Intel(R) Xeon(R)
BenchmarkEngineWaveLoop-8   	   14175	     79895 ns/op	       0 B/op	       0 allocs/op
BenchmarkBufferedRunner-8   	     229	   5175954 ns/op	       0 B/op	       0 allocs/op
BenchmarkEngineThroughput/workers=4-8         	     100	    123456 ns/op
BenchmarkLeaky-8            	     100	      9999 ns/op	      64 B/op	       3 allocs/op
PASS
ok  	minequiv	2.292s
`

func TestParse(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benches, want 4", len(benches))
	}
	wave := benches[0]
	if wave.Name != "BenchmarkEngineWaveLoop" || wave.RawName != "BenchmarkEngineWaveLoop-8" ||
		wave.Iterations != 14175 ||
		wave.NsPerOp != 79895 || wave.AllocsPerOp != 0 || !wave.HasMem {
		t.Fatalf("wave row wrong: %+v", wave)
	}
	if benches[2].Name != "BenchmarkEngineThroughput/workers=4" || benches[2].HasMem {
		t.Fatalf("sub-benchmark row wrong: %+v", benches[2])
	}
	if benches[3].AllocsPerOp != 3 || benches[3].BytesPerOp != 64 {
		t.Fatalf("leaky row wrong: %+v", benches[3])
	}
}

func TestGate(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGate(benches, "BenchmarkEngineWaveLoop,BenchmarkBufferedRunner"); err != nil {
		t.Fatalf("clean gate failed: %v", err)
	}
	if err := checkGate(benches, "BenchmarkLeaky"); err == nil {
		t.Fatal("allocating benchmark passed the gate")
	}
	if err := checkGate(benches, "BenchmarkMissing"); err == nil {
		t.Fatal("missing benchmark passed the gate")
	}
	if err := checkGate(benches, "BenchmarkEngineThroughput/workers=4"); err == nil {
		t.Fatal("benchmark without -benchmem columns passed the gate")
	}
	if err := checkGate(benches, ""); err != nil {
		t.Fatalf("empty gate failed: %v", err)
	}
	// A sub-benchmark with a numeric tail and no -GOMAXPROCS suffix
	// (e.g. under -cpu 1) must still be addressable by its raw name.
	cpu1, err := parse(strings.NewReader(
		"BenchmarkSweep/queue-4   \t     100\t      9999 ns/op\t       0 B/op\t       0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := checkGate(cpu1, "BenchmarkSweep/queue-4"); err != nil {
		t.Fatalf("raw-name gate match failed: %v", err)
	}
}

func TestRunWritesArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var stdout bytes.Buffer
	err := run([]string{"-o", path, "-fail-on-allocs", "BenchmarkEngineWaveLoop"},
		strings.NewReader(sample), &stdout)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var benches []Bench
	if err := json.Unmarshal(blob, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("artifact has %d rows, want 4", len(benches))
	}
	// Gate failure still writes the artifact, then errors.
	err = run([]string{"-o", path, "-fail-on-allocs", "BenchmarkLeaky"},
		strings.NewReader(sample), &stdout)
	if err == nil || !strings.Contains(err.Error(), "allocs/op, want 0") {
		t.Fatalf("gate error missing: %v", err)
	}
	// Stdout mode.
	stdout.Reset()
	if err := run([]string{}, strings.NewReader(sample), &stdout); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "BenchmarkBufferedRunner") {
		t.Fatal("stdout artifact missing rows")
	}
	// Empty input is an error.
	if err := run([]string{}, strings.NewReader("PASS\n"), &stdout); err == nil {
		t.Fatal("empty input accepted")
	}
}
