// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON artifact and optionally enforces an
// allocation-regression gate: with -fail-on-allocs, any named
// steady-state benchmark reporting allocs/op > 0 fails the run. CI uses
// it to emit BENCH_<pr>.json and keep the hot loops allocation-free.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -o BENCH.json \
//	    -fail-on-allocs BenchmarkEngineWaveLoop,BenchmarkBufferedRunner
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Name strips the trailing
// -GOMAXPROCS suffix; because a sub-benchmark's own numeric tail is
// indistinguishable from that suffix (and absent entirely under
// -cpu 1), RawName keeps the line's exact name and the gate matches
// either form.
type Bench struct {
	Name        string  `json:"name"`
	RawName     string  `json:"raw_name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	HasMem      bool    `json:"has_mem"` // line carried -benchmem columns
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "-", "output path for the JSON artifact (- = stdout)")
	gate := fs.String("fail-on-allocs", "", "comma-separated benchmark names that must report 0 allocs/op")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on input")
	}
	blob, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := stdout.Write(blob); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	return checkGate(benches, *gate)
}

// parse extracts benchmark result lines from `go test -bench` output.
func parse(in io.Reader) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  iterations  value ns/op  [bytes B/op  allocs allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix, keeping sub-benchmark paths.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		b := Bench{Name: name, RawName: fields[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
				b.HasMem = true
			case "allocs/op":
				b.AllocsPerOp = v
				b.HasMem = true
			}
		}
		benches = append(benches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return benches, nil
}

// checkGate fails if any named benchmark is missing, lacks -benchmem
// columns, or allocates in steady state.
func checkGate(benches []Bench, gate string) error {
	if gate == "" {
		return nil
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
		byName[b.RawName] = b
	}
	var bad []string
	for _, name := range strings.Split(gate, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: not found in input", name))
		case !b.HasMem:
			bad = append(bad, fmt.Sprintf("%s: no -benchmem columns", name))
		case b.AllocsPerOp > 0:
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, want 0", name, b.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocation gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}
