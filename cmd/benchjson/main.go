// Command benchjson converts `go test -bench -benchmem` output into a
// machine-readable JSON artifact and optionally enforces two regression
// gates: with -fail-on-allocs, any named steady-state benchmark
// reporting allocs/op > 0 fails the run; with -baseline, any benchmark
// whose ns/op exceeds the committed baseline artifact's by more than
// -max-regress percent fails it. CI uses both to emit BENCH_<pr>.json,
// keep the hot loops allocation-free, and keep them from silently
// getting slower than the checked-in trajectory.
//
// Usage:
//
//	go test -run XXX -bench . -benchmem . | benchjson -o BENCH.json \
//	    -fail-on-allocs BenchmarkEngineWaveLoop,BenchmarkBufferedRunner \
//	    -baseline BENCH_6.json -max-regress 20 -normalize BenchmarkEngineWaveLoop
//
// -normalize names a stable reference benchmark: each comparison ratio
// is divided by the reference's own current/baseline ratio first, so a
// baseline recorded on different hardware gates relative profile shape
// instead of absolute wall clock.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result line. Name strips the trailing
// -GOMAXPROCS suffix; because a sub-benchmark's own numeric tail is
// indistinguishable from that suffix (and absent entirely under
// -cpu 1), RawName keeps the line's exact name and the gate matches
// either form.
type Bench struct {
	Name        string  `json:"name"`
	RawName     string  `json:"raw_name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	HasMem      bool    `json:"has_mem"` // line carried -benchmem columns
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	out := fs.String("o", "-", "output path for the JSON artifact (- = stdout)")
	gate := fs.String("fail-on-allocs", "", "comma-separated benchmark names that must report 0 allocs/op")
	baseline := fs.String("baseline", "", "path to a prior benchjson artifact to compare ns/op against")
	maxRegress := fs.Float64("max-regress", 20, "max allowed ns/op regression vs -baseline, in percent")
	normalize := fs.String("normalize", "", "reference benchmark whose baseline ratio rescales the comparison (cross-machine)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := parse(in)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found on input")
	}
	blob, err := json.MarshalIndent(benches, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		if _, err := stdout.Write(blob); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		return err
	}
	if err := checkGate(benches, *gate); err != nil {
		return err
	}
	return checkBaseline(benches, *baseline, *maxRegress, *normalize)
}

// parse extracts benchmark result lines from `go test -bench` output.
func parse(in io.Reader) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name  iterations  value ns/op  [bytes B/op  allocs allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix, keeping sub-benchmark paths.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q: %w", line, err)
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		b := Bench{Name: name, RawName: fields[0], Iterations: iters, NsPerOp: ns}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				b.BytesPerOp = v
				b.HasMem = true
			case "allocs/op":
				b.AllocsPerOp = v
				b.HasMem = true
			}
		}
		benches = append(benches, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return benches, nil
}

// checkGate fails if any named benchmark is missing, lacks -benchmem
// columns, or allocates in steady state.
func checkGate(benches []Bench, gate string) error {
	if gate == "" {
		return nil
	}
	byName := map[string]Bench{}
	for _, b := range benches {
		byName[b.Name] = b
		byName[b.RawName] = b
	}
	var bad []string
	for _, name := range strings.Split(gate, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, ok := byName[name]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: not found in input", name))
		case !b.HasMem:
			bad = append(bad, fmt.Sprintf("%s: no -benchmem columns", name))
		case b.AllocsPerOp > 0:
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op, want 0", name, b.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("allocation gate failed:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// checkBaseline fails if any benchmark present in both the current run
// and the baseline artifact regressed by more than maxRegress percent
// ns/op. Benchmarks only on one side are ignored (new benchmarks enter
// the baseline on its next refresh; retired ones leave it).
//
// With normalize set to a benchmark name present on both sides, every
// current/baseline ratio is divided by that reference benchmark's
// ratio before the threshold applies. The reference is a stable,
// untouched hot loop, so its ratio measures the machine-speed gap
// between where the baseline was recorded and where the comparison
// runs; dividing it out turns the gate into "did this benchmark get
// slower relative to the profile?", which is what a committed baseline
// can meaningfully assert across hardware.
func checkBaseline(benches []Bench, path string, maxRegress float64, normalize string) error {
	if path == "" {
		return nil
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base []Bench
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	byName := map[string]Bench{}
	for _, b := range base {
		byName[b.Name] = b
	}
	factor := 1.0
	if normalize != "" {
		prev, ok := byName[normalize]
		if !ok || prev.NsPerOp <= 0 {
			return fmt.Errorf("normalize benchmark %s not in baseline %s", normalize, path)
		}
		cur, ok := currentByName(benches, normalize)
		if !ok || cur.NsPerOp <= 0 {
			return fmt.Errorf("normalize benchmark %s not in current run", normalize)
		}
		factor = cur.NsPerOp / prev.NsPerOp
	}
	var bad []string
	for _, b := range benches {
		if b.Name == normalize {
			continue // its normalized ratio is 1 by construction
		}
		prev, ok := byName[b.Name]
		if !ok || prev.NsPerOp <= 0 {
			continue
		}
		regress := 100 * ((b.NsPerOp/prev.NsPerOp)/factor - 1)
		if regress > maxRegress {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (+%.1f%% normalized, max +%.1f%%)",
				b.Name, b.NsPerOp, prev.NsPerOp, regress, maxRegress))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("ns/op regression gate failed against %s:\n  %s", path, strings.Join(bad, "\n  "))
	}
	return nil
}

// currentByName finds a benchmark of the current run by stripped name.
func currentByName(benches []Bench, name string) (Bench, bool) {
	for _, b := range benches {
		if b.Name == name {
			return b, true
		}
	}
	return Bench{}, false
}
