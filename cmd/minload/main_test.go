package main

import (
	"bytes"
	"context"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestHistQuantiles: the geometric histogram brackets known samples.
func TestHistQuantiles(t *testing.T) {
	h := &hist{}
	// 100 samples at ~100us, 10 at ~10ms: p50 near 100us, p99+ near 10ms.
	for i := 0; i < 100; i++ {
		h.add(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.add(10 * time.Millisecond)
	}
	if p50 := h.quantile(0.50); p50 < 50 || p50 > 200 {
		t.Errorf("p50 %.0fus out of bracket", p50)
	}
	if p99 := h.quantile(0.999); p99 < 5000 || p99 > 20000 {
		t.Errorf("p99.9 %.0fus out of bracket", p99)
	}
	var m hist
	m.merge(h)
	if m.count != 110 || m.maxUs < 9000 {
		t.Errorf("merge lost samples: count %d max %.0f", m.count, m.maxUs)
	}
}

// TestBuildMix: parsing, normalization, validation.
func TestBuildMix(t *testing.T) {
	ops, err := buildMix("check=3,route=1", 6, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].weight != 0.75 || ops[1].weight != 0.25 {
		t.Errorf("weights not normalized: %+v", ops)
	}
	for _, o := range ops {
		if len(o.bodies) != 4 {
			t.Errorf("op %s: %d variants, want 4", o.name, len(o.bodies))
		}
	}
	rng := rand.New(rand.NewPCG(1, 0))
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[pick(ops, rng).name]++
	}
	if counts["check"] < 2700 || counts["check"] > 3300 {
		t.Errorf("weighted pick skewed: %v", counts)
	}
	for _, bad := range []string{"", "wat=1", "check", "check=-1"} {
		if _, err := buildMix(bad, 6, 32, 4); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

// TestRunEndToEnd exercises the whole tool in-process: a short closed
// run writing a report, then a gated re-run against it.
func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	rep := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	args := []string{
		"-inprocess", "-duration", "300ms", "-warmup", "100ms", "-conns", "2",
		"-mix", "check=0.7,batch=0.3", "-stages", "4", "-seed", "1",
		"-lint-metrics", "-o", rep,
	}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"servedRPS"`, `"refCheckUs"`, `"p99Us"`, `"mode": "closed"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report missing %s:\n%s", want, data)
		}
	}
	if !strings.Contains(out.String(), "lint-clean") {
		t.Errorf("metrics lint did not run:\n%s", out.String())
	}
	// Gate a second run against the first: same machine, same load —
	// must pass a 60% envelope even on a noisy runner.
	out.Reset()
	args = append(args[:len(args)-2], "-baseline", rep, "-max-regress", "60")
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("gated run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within baseline envelope") {
		t.Errorf("gate verdict missing:\n%s", out.String())
	}
}

// TestRunOpenLoop: the open-loop pacer serves near the offered rate
// when far below capacity.
func TestRunOpenLoop(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-inprocess", "-duration", "400ms", "-warmup", "50ms", "-conns", "4",
		"-rps", "200", "-mix", "check=1", "-stages", "4", "-seed", "1",
	}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, `"mode": "open"`) || !strings.Contains(s, `"offeredRPS": 200`) {
		t.Errorf("open-loop report malformed:\n%s", s)
	}
}

// TestGateRejectsRegression: a fabricated faster baseline trips the
// served-RPS floor.
func TestGateRejectsRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	// Same refCheckUs (speed ratio 1), absurdly high baseline RPS.
	if err := os.WriteFile(base, []byte(`{"refCheckUs":1,"servedRPS":1e12,"latency":{"p99Us":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cur := report{RefCheckUs: 1, ServedRPS: 1000, Latency: latencyReport{P99Us: 100}}
	var out bytes.Buffer
	if err := gate(&out, cur, base, 20); err == nil {
		t.Fatalf("gate accepted a 10^9x regression:\n%s", out.String())
	}
}
