// Command minload drives load against a minserve instance — over the
// network or fully in-process — and reports served RPS and latency
// percentiles as JSON, the serving-plane analogue of the kernel
// BENCH_*.json reports.
//
// Two modes:
//
//   - Closed loop (default): -conns workers issue requests
//     back-to-back; served RPS is the capacity of the box at that
//     concurrency.
//   - Open loop (-rps N, optionally -ramp A:B): arrivals are generated
//     at the target rate independent of completions, the honest way to
//     measure latency under offered load; arrivals that find every
//     worker busy are counted as dropped, not silently coalesced.
//
// The workload is a weighted mix of check/route/simulate/batch/job
// requests (-mix), rotated over -distinct parameter variants so the
// response cache sees a realistic hit pattern rather than one hot key.
// The -codec axis picks the wire codec for the generated load: "json"
// (default) speaks the plain JSON API, "bin" transcodes every request
// body into the negotiated binary codec (application/x-min-bin) at mix
// build time and asks for binary responses, so the same mix measures
// both wire formats and the report's per-op byte counters quantify the
// encoding win alongside the latency one.
// The job op exercises the async plane end to end: it submits a small
// sweep to /v1/jobs and polls the status endpoint until the job
// reaches a terminal state, so its measured latency is
// submit-to-completion and its polling traffic rides the admission
// bypass exactly like a real client's.
//
// Cross-machine comparability: the report embeds refCheckUs, the
// median serial latency of a warm /v1/check on this host, measured
// before the run. Gating against a committed baseline (-baseline)
// scales both served RPS and p99 by the refCheckUs ratio, so CI fails
// on real serving regressions, not on slower runners.
//
// Usage:
//
//	minload -inprocess -duration 5s -conns 8 -codec bin -o bin.json
//	minload -addr localhost:8080 -rps 2000 -ramp 500:4000 -duration 30s
//	minload -inprocess -baseline BENCH_SERVE_10.json -max-regress 20 -lint-metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minequiv/minserve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minload:", err)
		os.Exit(1)
	}
}

// --- latency histogram ----------------------------------------------

// histGrowth is the geometric bucket ratio: 256 buckets starting at
// 1µs cover ~1µs to ~31s at <7% relative error, enough resolution for
// percentile reporting without per-sample storage.
const (
	histBuckets = 256
	histGrowth  = 1.07
)

// hist is a per-worker latency histogram; workers own one each (no
// sharing, no locks) and the main goroutine merges after the run.
type hist struct {
	buckets [histBuckets]uint64
	count   uint64
	sumUs   float64
	maxUs   float64
}

var histLog = math.Log(histGrowth)

func (h *hist) add(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	h.count++
	h.sumUs += us
	if us > h.maxUs {
		h.maxUs = us
	}
	idx := 0
	if us > 1 {
		idx = int(math.Log(us) / histLog)
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx]++
}

func (h *hist) merge(o *hist) {
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sumUs += o.sumUs
	if o.maxUs > h.maxUs {
		h.maxUs = o.maxUs
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// sample — a ≤7% overestimate, consistently applied.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			return math.Pow(histGrowth, float64(i+1))
		}
	}
	return h.maxUs
}

// --- workload -------------------------------------------------------

// op is one request template: path plus a rotation of bodies. idx is
// the op's position in the mix slice, the coordinate of its per-op
// counters.
type op struct {
	name   string
	idx    int
	weight float64
	bodies []string
}

// endpointFor maps a mix op name to the minserve endpoint name it
// posts to ("job" submits to /v1/jobs, "simfault" is a simulate body).
func endpointFor(name string) string {
	switch name {
	case "job":
		return "jobs"
	case "simfault":
		return "simulate"
	}
	return name
}

// opCounters is the per-op traffic accounting, shared across workers.
// bytesOut counts request-body bytes sent, bytesIn response-body bytes
// received (for the job op: submit plus every status poll), so the
// report shows the wire-size win of a codec, not just its latency.
type opCounters struct {
	requests atomic.Uint64
	bytesIn  atomic.Uint64
	bytesOut atomic.Uint64
}

// buildMix parses "check=0.55,route=0.25,simulate=0.1,batch=0.1" into
// weighted ops with -distinct body variants each.
func buildMix(spec string, stages, waves, distinct int) ([]op, error) {
	if distinct < 1 {
		distinct = 1
	}
	networks := []string{"omega", "baseline", "indirect-binary-cube", "flip"}
	checkBody := func(i int) string {
		st := 3 + i%(stages-2)
		return fmt.Sprintf(`{"network":%q,"stages":%d}`, networks[i%len(networks)], st)
	}
	bodies := func(gen func(int) string) []string {
		out := make([]string, distinct)
		for i := range out {
			out[i] = gen(i)
		}
		return out
	}
	gens := map[string]func(int) string{
		"check": checkBody,
		"route": func(i int) string {
			st := 3 + i%(stages-2)
			n := 1 << st
			return fmt.Sprintf(`{"network":%q,"stages":%d,"src":%d,"dst":%d}`,
				networks[i%len(networks)], st, i%n, (i*7+3)%n)
		},
		"simulate": func(i int) string {
			st := 3 + i%(stages-2)
			return fmt.Sprintf(`{"network":%q,"stages":%d,"waves":%d,"seed":%d}`,
				networks[i%len(networks)], st, waves, i+1)
		},
		// Degraded-fabric sweeps: simulate with a long pinned fault list,
		// the request shape where the wire codec dominates the cost (the
		// fault array is most of the body) rather than the kernel.
		"simfault": func(i int) string {
			st := 3 + i%(stages-2)
			n := 1 << st
			faults := make([]string, 0, 128)
			for j := 0; j < 128; j++ {
				switch j % 3 {
				case 0:
					faults = append(faults, fmt.Sprintf(`{"kind":"switch-dead","stage":%d,"cell":%d}`, j%st, (i+j)%(n/2)))
				case 1:
					faults = append(faults, fmt.Sprintf(`{"kind":"switch-stuck1","stage":%d,"cell":%d}`, j%st, (i+j)%(n/2)))
				default:
					faults = append(faults, fmt.Sprintf(`{"kind":"link-down","stage":%d,"link":%d}`, j%st, (i+j)%n))
				}
			}
			return fmt.Sprintf(`{"network":%q,"stages":%d,"waves":%d,"seed":%d,"faults":{"faults":[%s]}}`,
				networks[i%len(networks)], st, waves, i+1, strings.Join(faults, ","))
		},
		"batch": func(i int) string {
			var items []string
			for j := 0; j < 4; j++ {
				items = append(items, fmt.Sprintf(`{"op":"check","request":%s}`, checkBody(i*4+j)))
			}
			return `{"requests":[` + strings.Join(items, ",") + `]}`
		},
		// Small sweeps: a handful of shards each, so one job completes in
		// well under a second and the op measures the whole job-plane
		// round trip rather than a single long simulation.
		"job": func(i int) string {
			st := 3 + i%(stages-2)
			return fmt.Sprintf(`{"networks":[%q],"stages":%d,"trialsPerCell":%d,"shardTrials":%d,"seed":%d}`,
				networks[i%len(networks)], st, 4*waves, waves, i+1)
		},
	}
	var ops []op
	for _, part := range strings.Split(spec, ",") {
		name, wstr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		gen, ok := gens[name]
		if !ok {
			return nil, fmt.Errorf("mix entry %q: unknown op (check, route, simulate, simfault, batch, job)", part)
		}
		if w == 0 {
			continue
		}
		ops = append(ops, op{name: name, weight: w, bodies: bodies(gen)})
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	total := 0.0
	for i := range ops {
		total += ops[i].weight
	}
	for i := range ops {
		ops[i].weight /= total
		ops[i].idx = i
	}
	return ops, nil
}

// transcodeMix rewrites every request body in the mix into the binary
// wire codec, once, at build time — workers then send pre-encoded
// frames, so the generator measures the server's decode cost, not its
// own encode cost.
func transcodeMix(ops []op) error {
	for i := range ops {
		endpoint := endpointFor(ops[i].name)
		for j, body := range ops[i].bodies {
			enc, err := minserve.EncodeBinaryRequest(endpoint, []byte(body))
			if err != nil {
				return fmt.Errorf("transcode %s body: %w", ops[i].name, err)
			}
			ops[i].bodies[j] = string(enc)
		}
	}
	return nil
}

// pick selects an op by weight from r.
func pick(ops []op, r *rand.Rand) *op {
	x := r.Float64()
	for i := range ops {
		if x < ops[i].weight {
			return &ops[i]
		}
		x -= ops[i].weight
	}
	return &ops[len(ops)-1]
}

// --- dispatch -------------------------------------------------------

// target abstracts where requests go: a live server over TCP or the
// handler called in-process (no sockets, no syscalls — the same mode
// the CI serving-bench job uses, so runner networking never skews the
// gate).
// post returns the response-body size alongside the status so the
// per-op byte counters stay honest even when the body is discarded.
type target interface {
	post(path, body string) (status int, respBytes int, err error)
	postRead(path, body string) (status int, respBody []byte, err error)
	get(path string) (status int, body []byte, err error)
}

type httpTarget struct {
	base   string
	client *http.Client
	binary bool // send binary bodies, ask for binary responses
}

func (t *httpTarget) do(method, path, body string) (*http.Response, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != "" {
		if t.binary {
			req.Header.Set("Content-Type", minserve.MediaTypeBinary)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		req.ContentLength = int64(len(body))
	}
	if t.binary {
		req.Header.Set("Accept", minserve.MediaTypeBinary)
	}
	return t.client.Do(req)
}

func (t *httpTarget) post(path, body string) (int, int, error) {
	resp, err := t.do("POST", path, body)
	if err != nil {
		return 0, 0, err
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, int(n), nil
}

func (t *httpTarget) postRead(path, body string) (int, []byte, error) {
	resp, err := t.do("POST", path, body)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func (t *httpTarget) get(path string) (int, []byte, error) {
	resp, err := t.do("GET", path, "")
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// nullWriter is the in-process ResponseWriter: it keeps the status and
// discards the body (the generator measures the server, not itself).
type nullWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) WriteHeader(s int) {
	if w.status == 0 {
		w.status = s
	}
}
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

type inprocTarget struct {
	h      http.Handler
	binary bool // send binary bodies, ask for binary responses
}

func (t *inprocTarget) newRequest(method, path, body string) *http.Request {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, _ := http.NewRequest(method, "http://minload"+path, rd)
	if body != "" {
		if t.binary {
			req.Header.Set("Content-Type", minserve.MediaTypeBinary)
		} else {
			req.Header.Set("Content-Type", "application/json")
		}
		req.ContentLength = int64(len(body))
	}
	if t.binary {
		req.Header.Set("Accept", minserve.MediaTypeBinary)
	}
	return req
}

func (t *inprocTarget) post(path, body string) (int, int, error) {
	w := &nullWriter{h: make(http.Header)}
	t.h.ServeHTTP(w, t.newRequest("POST", path, body))
	return w.status, int(w.n), nil
}

func (t *inprocTarget) postRead(path, body string) (int, []byte, error) {
	var buf bytes.Buffer
	rec := &captureWriter{h: make(http.Header), body: &buf}
	t.h.ServeHTTP(rec, t.newRequest("POST", path, body))
	return rec.status, buf.Bytes(), nil
}

func (t *inprocTarget) get(path string) (int, []byte, error) {
	var buf bytes.Buffer
	rec := &captureWriter{h: make(http.Header), body: &buf}
	t.h.ServeHTTP(rec, t.newRequest("GET", path, ""))
	return rec.status, buf.Bytes(), nil
}

type captureWriter struct {
	h      http.Header
	status int
	body   *bytes.Buffer
}

func (w *captureWriter) Header() http.Header { return w.h }
func (w *captureWriter) WriteHeader(s int) {
	if w.status == 0 {
		w.status = s
	}
}
func (w *captureWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.body.Write(p)
}

// jobPollInterval paces the job op's status polling; the reads bypass
// admission server-side, so this bounds client chatter, not load.
const jobPollInterval = 5 * time.Millisecond

// jobStatus is the slice of the wire status the driver needs. minload
// speaks the HTTP protocol (it may target a remote build), so it
// matches fields by wire name rather than importing the jobs package.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func jobTerminal(state string) bool {
	return state != "pending" && state != "running"
}

// doOp issues one mix operation and returns the status plus the wire
// bytes it moved (request bodies out, response bodies in). Every op
// except job is a single POST; job submits a sweep and polls until the
// job leaves the live states, so its latency sample spans
// submit-to-completion and its byte counts include the polling. A run
// deadline that lands mid-poll abandons the job (the server finishes
// it alone) and reports the submit's status.
func doOp(ctx context.Context, tgt target, name, body string) (status, bytesOut, bytesIn int, err error) {
	bytesOut = len(body)
	if name != "job" {
		status, n, err := tgt.post("/v1/"+endpointFor(name), body)
		return status, bytesOut, n, err
	}
	status, resp, err := tgt.postRead("/v1/jobs", body)
	bytesIn = len(resp)
	if err != nil || status != http.StatusAccepted {
		return status, bytesOut, bytesIn, err
	}
	var st jobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		return 0, bytesOut, bytesIn, fmt.Errorf("job submit response: %w", err)
	}
	for !jobTerminal(st.State) {
		if ctx.Err() != nil {
			return status, bytesOut, bytesIn, nil
		}
		time.Sleep(jobPollInterval)
		code, b, err := tgt.get("/v1/jobs/" + st.ID)
		bytesIn += len(b)
		if err != nil || code != http.StatusOK {
			return code, bytesOut, bytesIn, err
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return 0, bytesOut, bytesIn, fmt.Errorf("job status response: %w", err)
		}
	}
	if st.State != "done" {
		return http.StatusInternalServerError, bytesOut, bytesIn, nil
	}
	return http.StatusOK, bytesOut, bytesIn, nil
}

// --- report ---------------------------------------------------------

type latencyReport struct {
	P50Us  float64 `json:"p50Us"`
	P90Us  float64 `json:"p90Us"`
	P99Us  float64 `json:"p99Us"`
	MeanUs float64 `json:"meanUs"`
	MaxUs  float64 `json:"maxUs"`
}

// opReport is one op's traffic share of the run.
type opReport struct {
	Requests uint64 `json:"requests"`
	BytesIn  uint64 `json:"bytesIn"`
	BytesOut uint64 `json:"bytesOut"`
}

// report is one codec's row of the committed/gated artifact
// (BENCH_SERVE_10.json holds one per codec under "codecs").
type report struct {
	Mode        string        `json:"mode"` // "closed" or "open"
	Mix         string        `json:"mix"`
	Codec       string        `json:"codec"`
	Conns       int           `json:"conns"`
	DurationSec float64       `json:"durationSec"`
	RefCheckUs  float64       `json:"refCheckUs"`
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`
	Shed        uint64        `json:"shed"`
	Dropped     uint64        `json:"dropped,omitempty"` // open loop only
	OfferedRPS  float64       `json:"offeredRPS,omitempty"`
	ServedRPS   float64       `json:"servedRPS"`
	Latency     latencyReport `json:"latency"`

	// Ops breaks traffic down per mix op; bytesIn/bytesOut make the
	// wire-size delta between codecs a committed, gateable number.
	Ops map[string]opReport `json:"ops,omitempty"`
}

// codecBaselines is the BENCH_SERVE_10.json envelope: one report per
// codec, keyed "json"/"bin", so a single committed file gates both
// wire formats.
type codecBaselines struct {
	Codecs map[string]report `json:"codecs"`
}

// --- main loop ------------------------------------------------------

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target host:port (mutually exclusive with -inprocess)")
	inproc := fs.Bool("inprocess", false, "drive an in-process minserve handler (no sockets)")
	duration := fs.Duration("duration", 10*time.Second, "measured run length (after warmup)")
	warmup := fs.Duration("warmup", time.Second, "unmeasured warmup length")
	rps := fs.Float64("rps", 0, "open-loop target arrival rate (0 = closed loop)")
	ramp := fs.String("ramp", "", "open-loop rate ramp start:end over the run (overrides -rps)")
	conns := fs.Int("conns", 8, "concurrent workers (closed loop) / max outstanding (open loop)")
	mixSpec := fs.String("mix", "check=0.55,route=0.25,simulate=0.1,batch=0.1", "weighted op mix")
	codecName := fs.String("codec", "json", "wire codec for the generated load: json or bin")
	stages := fs.Int("stages", 6, "largest network stages in the generated workload")
	waves := fs.Int("waves", 32, "waves per generated simulate request")
	distinct := fs.Int("distinct", 16, "distinct request variants per op (cache realism)")
	seed := fs.Int64("seed", 1, "workload selection seed")
	out := fs.String("o", "", "write the JSON report here (default stdout only)")
	baseline := fs.String("baseline", "", "gate against this committed report")
	maxRegress := fs.Float64("max-regress", 20, "allowed served-RPS/p99 regression vs baseline, percent")
	lintMetrics := fs.Bool("lint-metrics", false, "fetch /metrics after the run and lint the exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stages < 3 {
		return fmt.Errorf("-stages must be >= 3")
	}
	if (*addr == "") == !*inproc {
		return fmt.Errorf("exactly one of -addr or -inprocess is required")
	}
	if *codecName != "json" && *codecName != "bin" {
		return fmt.Errorf("-codec must be json or bin, got %q", *codecName)
	}
	binary := *codecName == "bin"

	// calTgt always speaks JSON: refCheckUs must measure the same thing
	// on every run so the cross-machine normalization stays comparable
	// across codec rows.
	var tgt, calTgt target
	if *inproc {
		h := minserve.NewHandler(minserve.Config{})
		tgt = &inprocTarget{h: h, binary: binary}
		calTgt = &inprocTarget{h: h}
	} else {
		client := &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: *conns * 2},
			Timeout:   30 * time.Second,
		}
		tgt = &httpTarget{base: "http://" + *addr, client: client, binary: binary}
		calTgt = &httpTarget{base: "http://" + *addr, client: client}
	}

	ops, err := buildMix(*mixSpec, *stages, *waves, *distinct)
	if err != nil {
		return err
	}
	if binary {
		if err := transcodeMix(ops); err != nil {
			return err
		}
	}

	// Calibration: median serial warm-check latency, for cross-machine
	// normalization of the committed baseline.
	refUs, err := calibrate(calTgt)
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}

	rep := report{
		Mix:        *mixSpec,
		Codec:      *codecName,
		Conns:      *conns,
		RefCheckUs: refUs,
	}

	rampStart, rampEnd := *rps, *rps
	if *ramp != "" {
		a, b, ok := strings.Cut(*ramp, ":")
		if !ok {
			return fmt.Errorf("-ramp wants start:end")
		}
		if rampStart, err = strconv.ParseFloat(a, 64); err != nil {
			return fmt.Errorf("-ramp start: %w", err)
		}
		if rampEnd, err = strconv.ParseFloat(b, 64); err != nil {
			return fmt.Errorf("-ramp end: %w", err)
		}
	}
	open := rampStart > 0 || rampEnd > 0

	// Warmup: unmeasured closed-loop traffic primes the cache and the
	// runtime.
	if *warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, *warmup)
		runClosed(warmCtx, tgt, ops, *conns, *seed+1, nil, nil, nil)
		cancel()
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	counters := make([]opCounters, len(ops))
	var (
		merged   hist
		requests uint64
		errsN    uint64
		shed     uint64
		dropped  uint64
		elapsed  time.Duration
	)
	startT := time.Now()
	if open {
		rep.Mode = "open"
		requests, errsN, shed, dropped = runOpen(runCtx, tgt, ops, *conns, *seed, rampStart, rampEnd, *duration, &merged, counters)
		offered := (rampStart + rampEnd) / 2
		rep.OfferedRPS = offered
		rep.Dropped = dropped
	} else {
		rep.Mode = "closed"
		var errCount, shedCount atomic.Uint64
		requests = runClosed(runCtx, tgt, ops, *conns, *seed, &merged, counters, func(status int) {
			switch {
			case status == http.StatusTooManyRequests:
				shedCount.Add(1)
			case status >= 400:
				errCount.Add(1)
			}
		})
		errsN, shed = errCount.Load(), shedCount.Load()
	}
	elapsed = time.Since(startT)

	rep.Ops = make(map[string]opReport, len(ops))
	for i := range ops {
		rep.Ops[ops[i].name] = opReport{
			Requests: counters[i].requests.Load(),
			BytesIn:  counters[i].bytesIn.Load(),
			BytesOut: counters[i].bytesOut.Load(),
		}
	}

	rep.DurationSec = elapsed.Seconds()
	rep.Requests = requests
	rep.Errors = errsN
	rep.Shed = shed
	rep.ServedRPS = float64(requests-errsN-shed) / elapsed.Seconds()
	rep.Latency = latencyReport{
		P50Us:  merged.quantile(0.50),
		P90Us:  merged.quantile(0.90),
		P99Us:  merged.quantile(0.99),
		MeanUs: merged.sumUs / math.Max(1, float64(merged.count)),
		MaxUs:  merged.maxUs,
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *lintMetrics {
		status, text, err := tgt.get("/metrics")
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("fetch /metrics: status %d err %v", status, err)
		}
		if err := minserve.LintExposition(text); err != nil {
			return fmt.Errorf("metrics lint: %w", err)
		}
		fmt.Fprintln(w, "minload: /metrics exposition lint-clean")
	}

	if *baseline != "" {
		if err := gate(w, rep, *baseline, *maxRegress); err != nil {
			return err
		}
	}
	return nil
}

// calibrate measures the median serial latency of a warm /v1/check.
func calibrate(tgt target) (float64, error) {
	const body = `{"network":"omega","stages":4}`
	// Warm the cache first.
	for i := 0; i < 10; i++ {
		if status, _, err := tgt.post("/v1/check", body); err != nil || status != http.StatusOK {
			return 0, fmt.Errorf("warm check: status %d err %v", status, err)
		}
	}
	samples := make([]float64, 300)
	for i := range samples {
		start := time.Now()
		if _, _, err := tgt.post("/v1/check", body); err != nil {
			return 0, err
		}
		samples[i] = float64(time.Since(start)) / float64(time.Microsecond)
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], nil
}

// runClosed drives conns workers back-to-back until ctx expires.
// h (merged histogram), counters, and onStatus may be nil (warmup).
func runClosed(ctx context.Context, tgt target, ops []op, conns int, seed int64, h *hist, counters []opCounters, onStatus func(int)) uint64 {
	var total atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(seed), uint64(c)*7919))
			local := &hist{}
			n := uint64(0)
			for ctx.Err() == nil {
				o := pick(ops, rng)
				body := o.bodies[rng.IntN(len(o.bodies))]
				start := time.Now()
				status, bOut, bIn, err := doOp(ctx, tgt, o.name, body)
				if err != nil {
					status = 0
				}
				local.add(time.Since(start))
				n++
				if counters != nil {
					cnt := &counters[o.idx]
					cnt.requests.Add(1)
					cnt.bytesOut.Add(uint64(bOut))
					cnt.bytesIn.Add(uint64(bIn))
				}
				if onStatus != nil {
					if err != nil {
						onStatus(599)
					} else {
						onStatus(status)
					}
				}
			}
			total.Add(n)
			if h != nil {
				mu.Lock()
				h.merge(local)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return total.Load()
}

// runOpen generates arrivals at the (possibly ramping) target rate on
// a central pacer; conns workers consume them. Arrivals that find the
// queue full are dropped and counted — open-loop honesty: a saturated
// server must not slow the arrival process down.
func runOpen(ctx context.Context, tgt target, ops []op, conns int, seed int64, rateStart, rateEnd float64, dur time.Duration, h *hist, counters []opCounters) (requests, errsN, shed, dropped uint64) {
	type job struct {
		op, body string
		idx      int
	}
	queue := make(chan job, conns*2)
	var errCount, shedCount, dropCount, total atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := &hist{}
			for j := range queue {
				start := time.Now()
				status, bOut, bIn, err := doOp(ctx, tgt, j.op, j.body)
				local.add(time.Since(start))
				total.Add(1)
				if counters != nil {
					cnt := &counters[j.idx]
					cnt.requests.Add(1)
					cnt.bytesOut.Add(uint64(bOut))
					cnt.bytesIn.Add(uint64(bIn))
				}
				switch {
				case err != nil:
					errCount.Add(1)
				case status == http.StatusTooManyRequests:
					shedCount.Add(1)
				case status >= 400:
					errCount.Add(1)
				}
			}
			mu.Lock()
			h.merge(local)
			mu.Unlock()
		}(c)
	}

	rng := rand.New(rand.NewPCG(uint64(seed), 0))
	start := time.Now()
	for ctx.Err() == nil {
		frac := float64(time.Since(start)) / float64(dur)
		if frac > 1 {
			frac = 1
		}
		rate := rateStart + (rateEnd-rateStart)*frac
		if rate <= 0 {
			rate = 1
		}
		interval := time.Duration(float64(time.Second) / rate)
		o := pick(ops, rng)
		j := job{op: o.name, body: o.bodies[rng.IntN(len(o.bodies))], idx: o.idx}
		select {
		case queue <- j:
		default:
			dropCount.Add(1)
		}
		timer := time.NewTimer(interval)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
		}
	}
	close(queue)
	wg.Wait()
	return total.Load(), errCount.Load(), shedCount.Load(), dropCount.Load()
}

// gate compares the run against a committed baseline, normalized by
// the refCheckUs ratio so a slower runner is not a false regression.
// A codec-split baseline ({"codecs":{"json":{...},"bin":{...}}}) gates
// the row matching the run's -codec; a legacy flat report gates as-is.
func gate(w io.Writer, cur report, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var split codecBaselines
	var base report
	if err := json.Unmarshal(data, &split); err == nil && len(split.Codecs) > 0 {
		row, ok := split.Codecs[cur.Codec]
		if !ok {
			return fmt.Errorf("baseline %s has no %q codec row", baselinePath, cur.Codec)
		}
		base = row
	} else if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.RefCheckUs <= 0 || cur.RefCheckUs <= 0 {
		return fmt.Errorf("baseline gating needs refCheckUs on both sides")
	}
	// speed > 1: this machine is faster than the baseline's.
	speed := base.RefCheckUs / cur.RefCheckUs
	normServed := cur.ServedRPS / speed
	normP99 := cur.Latency.P99Us * speed
	fmt.Fprintf(w, "minload: baseline gate (speed ratio %.2f): servedRPS %.0f (norm %.0f, floor %.0f), p99 %.0fus (norm %.0f, ceil %.0f)\n",
		speed, cur.ServedRPS, normServed, base.ServedRPS*(1-maxRegress/100),
		cur.Latency.P99Us, normP99, base.Latency.P99Us*(1+maxRegress/100))
	if normServed < base.ServedRPS*(1-maxRegress/100) {
		return fmt.Errorf("served RPS regression: normalized %.0f < %.0f (baseline %.0f - %.0f%%)",
			normServed, base.ServedRPS*(1-maxRegress/100), base.ServedRPS, maxRegress)
	}
	if normP99 > base.Latency.P99Us*(1+maxRegress/100) {
		return fmt.Errorf("p99 regression: normalized %.0fus > %.0fus (baseline %.0f + %.0f%%)",
			normP99, base.Latency.P99Us*(1+maxRegress/100), base.Latency.P99Us, maxRegress)
	}
	fmt.Fprintln(w, "minload: within baseline envelope")
	return nil
}
