// Command minload drives load against a minserve instance — over the
// network or fully in-process — and reports served RPS and latency
// percentiles as JSON, the serving-plane analogue of the kernel
// BENCH_*.json reports.
//
// Two modes:
//
//   - Closed loop (default): -conns workers issue requests
//     back-to-back; served RPS is the capacity of the box at that
//     concurrency.
//   - Open loop (-rps N, optionally -ramp A:B): arrivals are generated
//     at the target rate independent of completions, the honest way to
//     measure latency under offered load; arrivals that find every
//     worker busy are counted as dropped, not silently coalesced.
//
// The workload is a weighted mix of check/route/simulate/batch/job
// requests (-mix), rotated over -distinct parameter variants so the
// response cache sees a realistic hit pattern rather than one hot key.
// The job op exercises the async plane end to end: it submits a small
// sweep to /v1/jobs and polls the status endpoint until the job
// reaches a terminal state, so its measured latency is
// submit-to-completion and its polling traffic rides the admission
// bypass exactly like a real client's.
//
// Cross-machine comparability: the report embeds refCheckUs, the
// median serial latency of a warm /v1/check on this host, measured
// before the run. Gating against a committed baseline (-baseline)
// scales both served RPS and p99 by the refCheckUs ratio, so CI fails
// on real serving regressions, not on slower runners.
//
// Usage:
//
//	minload -inprocess -duration 5s -conns 8 -o BENCH_SERVE_7.json
//	minload -addr localhost:8080 -rps 2000 -ramp 500:4000 -duration 30s
//	minload -inprocess -baseline BENCH_SERVE_7.json -max-regress 20 -lint-metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minequiv/minserve"
)

func main() {
	if err := run(context.Background(), os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minload:", err)
		os.Exit(1)
	}
}

// --- latency histogram ----------------------------------------------

// histGrowth is the geometric bucket ratio: 256 buckets starting at
// 1µs cover ~1µs to ~31s at <7% relative error, enough resolution for
// percentile reporting without per-sample storage.
const (
	histBuckets = 256
	histGrowth  = 1.07
)

// hist is a per-worker latency histogram; workers own one each (no
// sharing, no locks) and the main goroutine merges after the run.
type hist struct {
	buckets [histBuckets]uint64
	count   uint64
	sumUs   float64
	maxUs   float64
}

var histLog = math.Log(histGrowth)

func (h *hist) add(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	h.count++
	h.sumUs += us
	if us > h.maxUs {
		h.maxUs = us
	}
	idx := 0
	if us > 1 {
		idx = int(math.Log(us) / histLog)
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx]++
}

func (h *hist) merge(o *hist) {
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sumUs += o.sumUs
	if o.maxUs > h.maxUs {
		h.maxUs = o.maxUs
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// sample — a ≤7% overestimate, consistently applied.
func (h *hist) quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum > target {
			return math.Pow(histGrowth, float64(i+1))
		}
	}
	return h.maxUs
}

// --- workload -------------------------------------------------------

// op is one request template: path plus a rotation of bodies.
type op struct {
	name   string
	weight float64
	bodies []string
}

// buildMix parses "check=0.55,route=0.25,simulate=0.1,batch=0.1" into
// weighted ops with -distinct body variants each.
func buildMix(spec string, stages, waves, distinct int) ([]op, error) {
	if distinct < 1 {
		distinct = 1
	}
	networks := []string{"omega", "baseline", "indirect-binary-cube", "flip"}
	checkBody := func(i int) string {
		st := 3 + i%(stages-2)
		return fmt.Sprintf(`{"network":%q,"stages":%d}`, networks[i%len(networks)], st)
	}
	bodies := func(gen func(int) string) []string {
		out := make([]string, distinct)
		for i := range out {
			out[i] = gen(i)
		}
		return out
	}
	gens := map[string]func(int) string{
		"check": checkBody,
		"route": func(i int) string {
			st := 3 + i%(stages-2)
			n := 1 << st
			return fmt.Sprintf(`{"network":%q,"stages":%d,"src":%d,"dst":%d}`,
				networks[i%len(networks)], st, i%n, (i*7+3)%n)
		},
		"simulate": func(i int) string {
			st := 3 + i%(stages-2)
			return fmt.Sprintf(`{"network":%q,"stages":%d,"waves":%d,"seed":%d}`,
				networks[i%len(networks)], st, waves, i+1)
		},
		"batch": func(i int) string {
			var items []string
			for j := 0; j < 4; j++ {
				items = append(items, fmt.Sprintf(`{"op":"check","request":%s}`, checkBody(i*4+j)))
			}
			return `{"requests":[` + strings.Join(items, ",") + `]}`
		},
		// Small sweeps: a handful of shards each, so one job completes in
		// well under a second and the op measures the whole job-plane
		// round trip rather than a single long simulation.
		"job": func(i int) string {
			st := 3 + i%(stages-2)
			return fmt.Sprintf(`{"networks":[%q],"stages":%d,"trialsPerCell":%d,"shardTrials":%d,"seed":%d}`,
				networks[i%len(networks)], st, 4*waves, waves, i+1)
		},
	}
	var ops []op
	for _, part := range strings.Split(spec, ",") {
		name, wstr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q: want op=weight", part)
		}
		w, err := strconv.ParseFloat(wstr, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix entry %q: bad weight", part)
		}
		gen, ok := gens[name]
		if !ok {
			return nil, fmt.Errorf("mix entry %q: unknown op (check, route, simulate, batch, job)", part)
		}
		if w == 0 {
			continue
		}
		ops = append(ops, op{name: name, weight: w, bodies: bodies(gen)})
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("empty mix %q", spec)
	}
	total := 0.0
	for i := range ops {
		total += ops[i].weight
	}
	for i := range ops {
		ops[i].weight /= total
	}
	return ops, nil
}

// pick selects an op by weight from r.
func pick(ops []op, r *rand.Rand) *op {
	x := r.Float64()
	for i := range ops {
		if x < ops[i].weight {
			return &ops[i]
		}
		x -= ops[i].weight
	}
	return &ops[len(ops)-1]
}

// --- dispatch -------------------------------------------------------

// target abstracts where requests go: a live server over TCP or the
// handler called in-process (no sockets, no syscalls — the same mode
// the CI serving-bench job uses, so runner networking never skews the
// gate).
type target interface {
	post(path, body string) (status int, err error)
	postRead(path, body string) (status int, respBody []byte, err error)
	get(path string) (status int, body []byte, err error)
}

type httpTarget struct {
	base   string
	client *http.Client
}

func (t *httpTarget) post(path, body string) (int, error) {
	resp, err := t.client.Post(t.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

func (t *httpTarget) postRead(path, body string) (int, []byte, error) {
	resp, err := t.client.Post(t.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func (t *httpTarget) get(path string) (int, []byte, error) {
	resp, err := t.client.Get(t.base + path)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// nullWriter is the in-process ResponseWriter: it keeps the status and
// discards the body (the generator measures the server, not itself).
type nullWriter struct {
	h      http.Header
	status int
	n      int64
}

func (w *nullWriter) Header() http.Header { return w.h }
func (w *nullWriter) WriteHeader(s int) {
	if w.status == 0 {
		w.status = s
	}
}
func (w *nullWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	w.n += int64(len(p))
	return len(p), nil
}

type inprocTarget struct {
	h http.Handler
}

func (t *inprocTarget) dispatch(method, path, body string) *nullWriter {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, _ := http.NewRequest(method, "http://minload"+path, rd)
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
		req.ContentLength = int64(len(body))
	}
	w := &nullWriter{h: make(http.Header)}
	t.h.ServeHTTP(w, req)
	return w
}

func (t *inprocTarget) post(path, body string) (int, error) {
	return t.dispatch("POST", path, body).status, nil
}

func (t *inprocTarget) postRead(path, body string) (int, []byte, error) {
	var buf bytes.Buffer
	req, _ := http.NewRequest("POST", "http://minload"+path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.ContentLength = int64(len(body))
	rec := &captureWriter{h: make(http.Header), body: &buf}
	t.h.ServeHTTP(rec, req)
	return rec.status, buf.Bytes(), nil
}

func (t *inprocTarget) get(path string) (int, []byte, error) {
	var buf bytes.Buffer
	req, _ := http.NewRequest("GET", "http://minload"+path, nil)
	rec := &captureWriter{h: make(http.Header), body: &buf}
	t.h.ServeHTTP(rec, req)
	return rec.status, buf.Bytes(), nil
}

type captureWriter struct {
	h      http.Header
	status int
	body   *bytes.Buffer
}

func (w *captureWriter) Header() http.Header { return w.h }
func (w *captureWriter) WriteHeader(s int) {
	if w.status == 0 {
		w.status = s
	}
}
func (w *captureWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.body.Write(p)
}

// jobPollInterval paces the job op's status polling; the reads bypass
// admission server-side, so this bounds client chatter, not load.
const jobPollInterval = 5 * time.Millisecond

// jobStatus is the slice of the wire status the driver needs. minload
// speaks the HTTP protocol (it may target a remote build), so it
// matches fields by wire name rather than importing the jobs package.
type jobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

func jobTerminal(state string) bool {
	return state != "pending" && state != "running"
}

// doOp issues one mix operation. Every op except job is a single POST;
// job submits a sweep and polls until the job leaves the live states,
// so its latency sample spans submit-to-completion. A run deadline
// that lands mid-poll abandons the job (the server finishes it alone)
// and reports the submit's status.
func doOp(ctx context.Context, tgt target, name, body string) (int, error) {
	if name != "job" {
		return tgt.post("/v1/"+name, body)
	}
	status, resp, err := tgt.postRead("/v1/jobs", body)
	if err != nil || status != http.StatusAccepted {
		return status, err
	}
	var st jobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		return 0, fmt.Errorf("job submit response: %w", err)
	}
	for !jobTerminal(st.State) {
		if ctx.Err() != nil {
			return status, nil
		}
		time.Sleep(jobPollInterval)
		code, b, err := tgt.get("/v1/jobs/" + st.ID)
		if err != nil || code != http.StatusOK {
			return code, err
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return 0, fmt.Errorf("job status response: %w", err)
		}
	}
	if st.State != "done" {
		return http.StatusInternalServerError, nil
	}
	return http.StatusOK, nil
}

// --- report ---------------------------------------------------------

type latencyReport struct {
	P50Us  float64 `json:"p50Us"`
	P90Us  float64 `json:"p90Us"`
	P99Us  float64 `json:"p99Us"`
	MeanUs float64 `json:"meanUs"`
	MaxUs  float64 `json:"maxUs"`
}

// report is the committed/gated artifact (BENCH_SERVE_7.json).
type report struct {
	Mode        string        `json:"mode"` // "closed" or "open"
	Mix         string        `json:"mix"`
	Conns       int           `json:"conns"`
	DurationSec float64       `json:"durationSec"`
	RefCheckUs  float64       `json:"refCheckUs"`
	Requests    uint64        `json:"requests"`
	Errors      uint64        `json:"errors"`
	Shed        uint64        `json:"shed"`
	Dropped     uint64        `json:"dropped,omitempty"` // open loop only
	OfferedRPS  float64       `json:"offeredRPS,omitempty"`
	ServedRPS   float64       `json:"servedRPS"`
	Latency     latencyReport `json:"latency"`
}

// --- main loop ------------------------------------------------------

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minload", flag.ContinueOnError)
	addr := fs.String("addr", "", "target host:port (mutually exclusive with -inprocess)")
	inproc := fs.Bool("inprocess", false, "drive an in-process minserve handler (no sockets)")
	duration := fs.Duration("duration", 10*time.Second, "measured run length (after warmup)")
	warmup := fs.Duration("warmup", time.Second, "unmeasured warmup length")
	rps := fs.Float64("rps", 0, "open-loop target arrival rate (0 = closed loop)")
	ramp := fs.String("ramp", "", "open-loop rate ramp start:end over the run (overrides -rps)")
	conns := fs.Int("conns", 8, "concurrent workers (closed loop) / max outstanding (open loop)")
	mixSpec := fs.String("mix", "check=0.55,route=0.25,simulate=0.1,batch=0.1", "weighted op mix")
	stages := fs.Int("stages", 6, "largest network stages in the generated workload")
	waves := fs.Int("waves", 32, "waves per generated simulate request")
	distinct := fs.Int("distinct", 16, "distinct request variants per op (cache realism)")
	seed := fs.Int64("seed", 1, "workload selection seed")
	out := fs.String("o", "", "write the JSON report here (default stdout only)")
	baseline := fs.String("baseline", "", "gate against this committed report")
	maxRegress := fs.Float64("max-regress", 20, "allowed served-RPS/p99 regression vs baseline, percent")
	lintMetrics := fs.Bool("lint-metrics", false, "fetch /metrics after the run and lint the exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stages < 3 {
		return fmt.Errorf("-stages must be >= 3")
	}
	if (*addr == "") == !*inproc {
		return fmt.Errorf("exactly one of -addr or -inprocess is required")
	}

	var tgt target
	if *inproc {
		tgt = &inprocTarget{h: minserve.NewHandler(minserve.Config{})}
	} else {
		tgt = &httpTarget{
			base: "http://" + *addr,
			client: &http.Client{
				Transport: &http.Transport{MaxIdleConnsPerHost: *conns * 2},
				Timeout:   30 * time.Second,
			},
		}
	}

	ops, err := buildMix(*mixSpec, *stages, *waves, *distinct)
	if err != nil {
		return err
	}

	// Calibration: median serial warm-check latency, for cross-machine
	// normalization of the committed baseline.
	refUs, err := calibrate(tgt)
	if err != nil {
		return fmt.Errorf("calibration: %w", err)
	}

	rep := report{
		Mix:        *mixSpec,
		Conns:      *conns,
		RefCheckUs: refUs,
	}

	rampStart, rampEnd := *rps, *rps
	if *ramp != "" {
		a, b, ok := strings.Cut(*ramp, ":")
		if !ok {
			return fmt.Errorf("-ramp wants start:end")
		}
		if rampStart, err = strconv.ParseFloat(a, 64); err != nil {
			return fmt.Errorf("-ramp start: %w", err)
		}
		if rampEnd, err = strconv.ParseFloat(b, 64); err != nil {
			return fmt.Errorf("-ramp end: %w", err)
		}
	}
	open := rampStart > 0 || rampEnd > 0

	// Warmup: unmeasured closed-loop traffic primes the cache and the
	// runtime.
	if *warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, *warmup)
		runClosed(warmCtx, tgt, ops, *conns, *seed+1, nil, nil)
		cancel()
	}

	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	var (
		merged   hist
		requests uint64
		errsN    uint64
		shed     uint64
		dropped  uint64
		elapsed  time.Duration
	)
	startT := time.Now()
	if open {
		rep.Mode = "open"
		requests, errsN, shed, dropped = runOpen(runCtx, tgt, ops, *conns, *seed, rampStart, rampEnd, *duration, &merged)
		offered := (rampStart + rampEnd) / 2
		rep.OfferedRPS = offered
		rep.Dropped = dropped
	} else {
		rep.Mode = "closed"
		var errCount, shedCount atomic.Uint64
		requests = runClosed(runCtx, tgt, ops, *conns, *seed, &merged, func(status int) {
			switch {
			case status == http.StatusTooManyRequests:
				shedCount.Add(1)
			case status >= 400:
				errCount.Add(1)
			}
		})
		errsN, shed = errCount.Load(), shedCount.Load()
	}
	elapsed = time.Since(startT)

	rep.DurationSec = elapsed.Seconds()
	rep.Requests = requests
	rep.Errors = errsN
	rep.Shed = shed
	rep.ServedRPS = float64(requests-errsN-shed) / elapsed.Seconds()
	rep.Latency = latencyReport{
		P50Us:  merged.quantile(0.50),
		P90Us:  merged.quantile(0.90),
		P99Us:  merged.quantile(0.99),
		MeanUs: merged.sumUs / math.Max(1, float64(merged.count)),
		MaxUs:  merged.maxUs,
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if *out != "" {
		data, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
	}

	if *lintMetrics {
		status, text, err := tgt.get("/metrics")
		if err != nil || status != http.StatusOK {
			return fmt.Errorf("fetch /metrics: status %d err %v", status, err)
		}
		if err := minserve.LintExposition(text); err != nil {
			return fmt.Errorf("metrics lint: %w", err)
		}
		fmt.Fprintln(w, "minload: /metrics exposition lint-clean")
	}

	if *baseline != "" {
		if err := gate(w, rep, *baseline, *maxRegress); err != nil {
			return err
		}
	}
	return nil
}

// calibrate measures the median serial latency of a warm /v1/check.
func calibrate(tgt target) (float64, error) {
	const body = `{"network":"omega","stages":4}`
	// Warm the cache first.
	for i := 0; i < 10; i++ {
		if status, err := tgt.post("/v1/check", body); err != nil || status != http.StatusOK {
			return 0, fmt.Errorf("warm check: status %d err %v", status, err)
		}
	}
	samples := make([]float64, 300)
	for i := range samples {
		start := time.Now()
		if _, err := tgt.post("/v1/check", body); err != nil {
			return 0, err
		}
		samples[i] = float64(time.Since(start)) / float64(time.Microsecond)
	}
	sort.Float64s(samples)
	return samples[len(samples)/2], nil
}

// runClosed drives conns workers back-to-back until ctx expires.
// h (merged histogram) and onStatus may be nil (warmup).
func runClosed(ctx context.Context, tgt target, ops []op, conns int, seed int64, h *hist, onStatus func(int)) uint64 {
	var total atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(seed), uint64(c)*7919))
			local := &hist{}
			n := uint64(0)
			for ctx.Err() == nil {
				o := pick(ops, rng)
				body := o.bodies[rng.IntN(len(o.bodies))]
				start := time.Now()
				status, err := doOp(ctx, tgt, o.name, body)
				if err != nil {
					status = 0
				}
				local.add(time.Since(start))
				n++
				if onStatus != nil {
					if err != nil {
						onStatus(599)
					} else {
						onStatus(status)
					}
				}
			}
			total.Add(n)
			if h != nil {
				mu.Lock()
				h.merge(local)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return total.Load()
}

// runOpen generates arrivals at the (possibly ramping) target rate on
// a central pacer; conns workers consume them. Arrivals that find the
// queue full are dropped and counted — open-loop honesty: a saturated
// server must not slow the arrival process down.
func runOpen(ctx context.Context, tgt target, ops []op, conns int, seed int64, rateStart, rateEnd float64, dur time.Duration, h *hist) (requests, errsN, shed, dropped uint64) {
	type job struct{ op, body string }
	queue := make(chan job, conns*2)
	var errCount, shedCount, dropCount, total atomic.Uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := &hist{}
			for j := range queue {
				start := time.Now()
				status, err := doOp(ctx, tgt, j.op, j.body)
				local.add(time.Since(start))
				total.Add(1)
				switch {
				case err != nil:
					errCount.Add(1)
				case status == http.StatusTooManyRequests:
					shedCount.Add(1)
				case status >= 400:
					errCount.Add(1)
				}
			}
			mu.Lock()
			h.merge(local)
			mu.Unlock()
		}(c)
	}

	rng := rand.New(rand.NewPCG(uint64(seed), 0))
	start := time.Now()
	for ctx.Err() == nil {
		frac := float64(time.Since(start)) / float64(dur)
		if frac > 1 {
			frac = 1
		}
		rate := rateStart + (rateEnd-rateStart)*frac
		if rate <= 0 {
			rate = 1
		}
		interval := time.Duration(float64(time.Second) / rate)
		o := pick(ops, rng)
		j := job{op: o.name, body: o.bodies[rng.IntN(len(o.bodies))]}
		select {
		case queue <- j:
		default:
			dropCount.Add(1)
		}
		timer := time.NewTimer(interval)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
		}
	}
	close(queue)
	wg.Wait()
	return total.Load(), errCount.Load(), shedCount.Load(), dropCount.Load()
}

// gate compares the run against a committed baseline, normalized by
// the refCheckUs ratio so a slower runner is not a false regression.
func gate(w io.Writer, cur report, baselinePath string, maxRegress float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.RefCheckUs <= 0 || cur.RefCheckUs <= 0 {
		return fmt.Errorf("baseline gating needs refCheckUs on both sides")
	}
	// speed > 1: this machine is faster than the baseline's.
	speed := base.RefCheckUs / cur.RefCheckUs
	normServed := cur.ServedRPS / speed
	normP99 := cur.Latency.P99Us * speed
	fmt.Fprintf(w, "minload: baseline gate (speed ratio %.2f): servedRPS %.0f (norm %.0f, floor %.0f), p99 %.0fus (norm %.0f, ceil %.0f)\n",
		speed, cur.ServedRPS, normServed, base.ServedRPS*(1-maxRegress/100),
		cur.Latency.P99Us, normP99, base.Latency.P99Us*(1+maxRegress/100))
	if normServed < base.ServedRPS*(1-maxRegress/100) {
		return fmt.Errorf("served RPS regression: normalized %.0f < %.0f (baseline %.0f - %.0f%%)",
			normServed, base.ServedRPS*(1-maxRegress/100), base.ServedRPS, maxRegress)
	}
	if normP99 > base.Latency.P99Us*(1+maxRegress/100) {
		return fmt.Errorf("p99 regression: normalized %.0fus > %.0fus (baseline %.0f + %.0f%%)",
			normP99, base.Latency.P99Us*(1+maxRegress/100), base.Latency.P99Us, maxRegress)
	}
	fmt.Fprintln(w, "minload: within baseline envelope")
	return nil
}
