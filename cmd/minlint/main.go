// Command minlint is the repo's static-contract checker: a
// multichecker over the analyzers in internal/lint (detrand,
// impboundary, hotalloc, errcodes, metriclint).
//
// Standalone:
//
//	minlint [-detrand] [-impboundary] [...] [packages]
//
// loads the packages (default ./...) through `go list -export`, runs
// the selected analyzers (none selected = all), prints findings to
// stdout, and exits 1 if there were any.
//
// As a vet tool:
//
//	go vet -vettool=$(which minlint) ./...
//
// it speaks the go vet unit-checker protocol: -V=full for the tool
// build ID, -flags for the flag inventory, and a single *.cfg argument
// per compilation unit, with diagnostics on stderr and exit status 2.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"minequiv/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 && args[0] == "-V=full" {
		return printVersion(stdout, stderr)
	}

	fs := flag.NewFlagSet("minlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	selected := map[string]*bool{}
	for _, a := range lint.Analyzers {
		selected[a.Name] = fs.Bool(a.Name, false, firstLine(a.Doc))
	}
	flagsJSON := fs.Bool("flags", false, "print analyzer flags in JSON (vet driver protocol)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: minlint [analyzer flags] [package pattern ...]\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which minlint) [analyzer flags] [package pattern ...]\n\n")
		fmt.Fprintf(stderr, "With no analyzer flags, every analyzer runs.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *flagsJSON {
		return printFlags(fs, stdout, stderr)
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.Analyzers {
		if *selected[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	if len(analyzers) == 0 {
		analyzers = lint.Analyzers
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitCheck(rest[0], analyzers, stderr)
	}
	return standalone(rest, analyzers, stdout, stderr)
}

// standalone loads packages via go list and prints findings.
func standalone(patterns []string, analyzers []*lint.Analyzer, stdout, stderr io.Writer) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the unit-checker configuration the go command writes
// for each compilation unit (see x/tools unitchecker; reimplemented
// here to keep the module dependency-free).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// unitCheck analyzes one compilation unit described by cfgFile.
func unitCheck(cfgFile string, analyzers []*lint.Analyzer, stderr io.Writer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "minlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// The go command caches this unit's result keyed on the facts
	// output; minlint keeps no facts but the file must exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(stderr, "minlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(stderr, err)
			return 2
		}
		files = append(files, f)
	}
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})
	info := lint.NewInfo()
	tconf := types.Config{Importer: imp, Error: func(error) {}}
	tpkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, err)
		return 2
	}

	// Test variants arrive as "path [path.test]"; analyzers key on the
	// base path (their test-file policy already matches the standalone
	// driver's).
	pkg := &lint.Package{
		Path:  basePath(cfg.ImportPath),
		Fset:  fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	diags, err := lint.Run([]*lint.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// basePath strips a unit-checker test-variant suffix: "p [p.test]" -> "p".
func basePath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// printVersion implements -V=full: the go command derives the vet
// tool's build ID from this line, so it must change when the binary
// does — hash the executable, same as x/tools' unitchecker.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(exe), h.Sum(nil))
	return 0
}

// printFlags implements -flags: the go command asks the vet tool which
// flags it understands before forwarding any.
func printFlags(fs *flag.FlagSet, stdout, stderr io.Writer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" {
			return
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintln(stderr, "minlint:", err)
		return 2
	}
	fmt.Fprintln(stdout, string(data))
	return 0
}

// firstLine trims an analyzer Doc to its first line for flag usage
// text.
func firstLine(doc string) string {
	if i := strings.IndexByte(doc, '\n'); i >= 0 {
		doc = doc[:i]
	}
	return strings.TrimSpace(doc)
}
