package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestVersionFull(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-V=full) = %d, stderr: %s", code, stderr.String())
	}
	// The go command parses "<name> version <...> buildID=<hex>".
	re := regexp.MustCompile(`^\S+ version \S+ [^\n]*buildID=[0-9a-f]+\n$`)
	if !re.MatchString(stdout.String()) {
		t.Fatalf("-V=full output %q does not match vet tool-ID format", stdout.String())
	}
}

func TestFlagsJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-flags) = %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"detrand", "impboundary", "hotalloc", "errcodes", "metriclint"} {
		if !strings.Contains(stdout.String(), `"Name": "`+name+`"`) {
			t.Errorf("-flags output missing analyzer flag %q:\n%s", name, stdout.String())
		}
	}
}

// TestStandaloneModuleClean is the dogfood gate: every analyzer over
// every package of this module must come back clean.
func TestStandaloneModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"minequiv/..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("minlint minequiv/... = exit %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// TestVetTool proves the unit-checker protocol end to end: build the
// binary, run it under `go vet -vettool` against a throwaway module
// with a deliberate boundary violation, and check it is reported.
func TestVetTool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the minlint binary and runs go vet")
	}
	tmp := t.TempDir()
	bin := filepath.Join(tmp, "minlint")
	build := exec.Command("go", "build", "-o", bin, "minequiv/cmd/minlint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building minlint: %v\n%s", err, out)
	}

	// A module named minequiv so the default boundary policy applies.
	mod := filepath.Join(tmp, "mod")
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module minequiv\n\ngo 1.24\n")
	write("internal/sim/sim.go", "package sim\n\n// Hidden is internal.\nfunc Hidden() int { return 1 }\n")
	write("leaky/leaky.go", "package leaky\n\nimport \"minequiv/internal/sim\"\n\n// Leak crosses the boundary.\nfunc Leak() int { return sim.Hidden() }\n")

	vet := exec.Command("go", "vet", "-vettool="+bin, "-impboundary", "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool succeeded, want boundary violation\n%s", out)
	}
	if !strings.Contains(string(out), "imports minequiv/internal/sim across the public API boundary") {
		t.Fatalf("go vet -vettool output missing boundary diagnostic:\n%s", out)
	}

	// And the clean path: drop the violation, vet must pass.
	write("leaky/leaky.go", "package leaky\n\n// Leak is gone.\nfunc Leak() int { return 1 }\n")
	vet = exec.Command("go", "vet", "-vettool="+bin, "-impboundary", "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool on clean module: %v\n%s", err, out)
	}
}
