// Command minserve serves the min public API over HTTP: the network
// catalog, the paper's characterization check, bit-directed routing
// and the parallel traffic-simulation engine. Bodies are JSON by
// default; clients may negotiate the binary wire codec per request
// with Content-Type / Accept: application/x-min-bin (sweep-sized
// fault plans shrink ~9x on the wire — see the minserve package doc).
//
// Usage:
//
//	minserve -addr :8080
//	curl localhost:8080/v1/networks
//	curl -d '{"network":"omega","stages":4}' localhost:8080/v1/check
//	curl -d '{"network":"omega","stages":6,"waves":500,"seed":7}' localhost:8080/v1/simulate
//
// With -jobs-dir, long sweeps run on the checkpointed job plane and
// survive restarts:
//
//	minserve -addr :8080 -jobs-dir /var/lib/minserve/jobs
//	curl -d '{"networks":["omega","baseline"],"stages":6,"faultRates":[0,0.05],"trialsPerCell":20000}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/<id>/events
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get -grace to finish (cancelled simulations stop within one
// trial), and the job plane drains — running shards checkpoint, so a
// restart resumes exactly where the logs end.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minequiv/minserve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit, bytes")
	maxStages := fs.Int("max-stages", 10, "largest accepted network (terminals = 2^stages)")
	maxTrials := fs.Int("max-trials", 100000, "largest accepted waves/replications count")
	maxCycles := fs.Int("max-cycles", 200000, "largest accepted cycles+warmup per replication")
	maxFaults := fs.Int("max-faults", 256, "largest accepted pinned-fault list per request")
	maxBatch := fs.Int("max-batch", 64, "largest accepted /v1/batch item count")
	cacheEntries := fs.Int("cache-entries", 256, "response cache capacity (negative disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "admitted work requests executing at once (0 = GOMAXPROCS, negative disables admission)")
	maxQueue := fs.Int("max-queue", 64, "work requests allowed to wait for a slot (negative: shed immediately)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest one request may wait in the queue")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline, queue wait included (0 disables)")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	jobsDir := fs.String("jobs-dir", "", "checkpoint directory for the async job plane (empty: jobs are in-memory and die with the process)")
	jobWorkers := fs.Int("job-workers", 0, "job-plane shard executors (0 = GOMAXPROCS)")
	jobTTL := fs.Duration("job-ttl", time.Hour, "how long finished jobs (and their checkpoints) are kept (negative: forever)")
	maxJobs := fs.Int("max-jobs", 16, "live jobs accepted at once")
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc, err := minserve.New(minserve.Config{
		MaxBodyBytes:   *maxBody,
		MaxStages:      *maxStages,
		MaxTrials:      *maxTrials,
		MaxCycles:      *maxCycles,
		MaxFaults:      *maxFaults,
		MaxBatch:       *maxBatch,
		CacheEntries:   *cacheEntries,
		MaxConcurrent:  *maxConcurrent,
		MaxQueueDepth:  *maxQueue,
		QueueWait:      *queueWait,
		RequestTimeout: *reqTimeout,
		JobsDir:        *jobsDir,
		JobWorkers:     *jobWorkers,
		JobTTL:         *jobTTL,
		MaxJobs:        *maxJobs,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		// No WriteTimeout: long simulations are legitimate; the request
		// limits above bound them, and BaseContext cancellation stops
		// abandoned runs.
	}
	fmt.Fprintf(w, "minserve listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "minserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	httpErr := srv.Shutdown(shutdownCtx)
	if httpErr != nil {
		// Requests still running after the grace period are cut off.
		_ = srv.Close()
	}
	// Drain the job plane within the same grace budget: in-flight shards
	// finish and checkpoint; past the deadline they are aborted and will
	// simply re-run after the next start.
	if err := svc.Close(shutdownCtx); err != nil {
		fmt.Fprintln(w, "minserve: job drain cut short; unfinished shards will re-run on restart")
	}
	if httpErr != nil {
		return fmt.Errorf("graceful shutdown: %w", httpErr)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "minserve: bye")
	return nil
}
