// Command minserve serves the min public API over HTTP JSON: the
// network catalog, the paper's characterization check, bit-directed
// routing and the parallel traffic-simulation engine.
//
// Usage:
//
//	minserve -addr :8080
//	curl localhost:8080/v1/networks
//	curl -d '{"network":"omega","stages":4}' localhost:8080/v1/check
//	curl -d '{"network":"omega","stages":6,"waves":500,"seed":7}' localhost:8080/v1/simulate
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight
// requests get -grace to finish (cancelled simulations stop within one
// trial).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"minequiv/minserve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "minserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("minserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	maxBody := fs.Int64("max-body", 1<<20, "request body size limit, bytes")
	maxStages := fs.Int("max-stages", 10, "largest accepted network (terminals = 2^stages)")
	maxTrials := fs.Int("max-trials", 100000, "largest accepted waves/replications count")
	maxCycles := fs.Int("max-cycles", 200000, "largest accepted cycles+warmup per replication")
	maxFaults := fs.Int("max-faults", 256, "largest accepted pinned-fault list per request")
	maxBatch := fs.Int("max-batch", 64, "largest accepted /v1/batch item count")
	cacheEntries := fs.Int("cache-entries", 256, "response cache capacity (negative disables)")
	maxConcurrent := fs.Int("max-concurrent", 0, "admitted work requests executing at once (0 = GOMAXPROCS, negative disables admission)")
	maxQueue := fs.Int("max-queue", 64, "work requests allowed to wait for a slot (negative: shed immediately)")
	queueWait := fs.Duration("queue-wait", time.Second, "longest one request may wait in the queue")
	reqTimeout := fs.Duration("request-timeout", 0, "per-request deadline, queue wait included (0 disables)")
	grace := fs.Duration("grace", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler: minserve.NewHandler(minserve.Config{
			MaxBodyBytes:   *maxBody,
			MaxStages:      *maxStages,
			MaxTrials:      *maxTrials,
			MaxCycles:      *maxCycles,
			MaxFaults:      *maxFaults,
			MaxBatch:       *maxBatch,
			CacheEntries:   *cacheEntries,
			MaxConcurrent:  *maxConcurrent,
			MaxQueueDepth:  *maxQueue,
			QueueWait:      *queueWait,
			RequestTimeout: *reqTimeout,
		}),
		ReadHeaderTimeout: 5 * time.Second,
		// No WriteTimeout: long simulations are legitimate; the request
		// limits above bound them, and BaseContext cancellation stops
		// abandoned runs.
	}
	fmt.Fprintf(w, "minserve listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(w, "minserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Requests still running after the grace period are cut off.
		_ = srv.Close()
		return fmt.Errorf("graceful shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(w, "minserve: bye")
	return nil
}
