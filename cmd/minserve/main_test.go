package main

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServer boots run() on an ephemeral port and returns the base URL
// plus a stop function that triggers graceful shutdown and waits for
// run to return.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		err := run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), pw)
		pw.Close()
		errc <- err
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		cancel()
		t.Fatalf("no listen line; run: %v", <-errc)
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	if i < 0 {
		cancel()
		t.Fatalf("unexpected first line %q", line)
	}
	go func() { // drain the rest so run never blocks on the pipe
		for sc.Scan() {
		}
	}()
	return line[i:], func() error {
		cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(15 * time.Second):
			return context.DeadlineExceeded
		}
	}
}

func TestServeAndGracefulShutdown(t *testing.T) {
	base, stop := startServer(t)

	resp, err := http.Get(base + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "omega") {
		t.Fatalf("GET /v1/networks: %d %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/simulate", "application/json",
		strings.NewReader(`{"network":"omega","stages":4,"waves":50,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"throughput"`) {
		t.Fatalf("POST /v1/simulate: %d %s", resp.StatusCode, body)
	}

	if err := stop(); err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
}

func TestFlagLimitsReachHandler(t *testing.T) {
	base, stop := startServer(t, "-max-stages", "4")
	defer stop()

	resp, err := http.Post(base+"/v1/check", "application/json",
		strings.NewReader(`{"network":"omega","stages":6}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "[2,4]") {
		t.Fatalf("max-stages flag ignored: %d %s", resp.StatusCode, body)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{"-addr", "999.999.999.999:1"}, io.Discard); err == nil {
		t.Error("bad address accepted")
	}
	if err := run(context.Background(), []string{"-nope"}, io.Discard); err == nil {
		t.Error("unknown flag accepted")
	}
}
