// Root benchmark harness: one benchmark per experiment table/figure of
// EXPERIMENTS.md, so `go test -bench=. -benchmem` regenerates the
// performance side of every reported artifact.
package minequiv

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"minequiv/internal/codec"
	"minequiv/internal/conn"
	"minequiv/internal/engine"
	"minequiv/internal/equiv"
	"minequiv/internal/experiments"
	"minequiv/internal/midigraph"
	"minequiv/internal/pipid"
	"minequiv/internal/randnet"
	"minequiv/internal/route"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
	"minequiv/min"
	"minequiv/minserve"
)

// BenchmarkBuildBaseline (F1): constructing the Baseline MI-digraph.
func BenchmarkBuildBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topology.Baseline(10)
	}
}

// BenchmarkComponentTable (F3): component/stage intersection tables.
func BenchmarkComponentTable(b *testing.B) {
	g := topology.Baseline(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ComponentStageTable(1, g.Stages()-1)
	}
}

// BenchmarkSixNetworksEquiv (T1): pairwise equivalence of the catalog.
func BenchmarkSixNetworksEquiv(b *testing.B) {
	nets, err := topology.BuildAll(7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nw := range nets {
			if !equiv.IsBaselineEquivalent(nw.Graph) {
				b.Fatal("classical network rejected")
			}
		}
	}
}

// BenchmarkReverseConnection (T2): Proposition 1 constructive reverse.
func BenchmarkReverseConnection(b *testing.B) {
	c := conn.RandomIndependent(rand.New(rand.NewPCG(1, 0)), 12, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reverse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPSuffixCheck (T3): the P(*,n) family on one graph.
func BenchmarkPSuffixCheck(b *testing.B) {
	g := topology.Baseline(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.CheckSuffix()
	}
}

// BenchmarkCheckAllWindows pins the analysis-core rewrite: the full
// O(n²) window table at n=16 via the sweep Analyzer (one incremental
// union-find sweep per left edge, reused scratch, 0 allocs/op — CI
// gates on it) against the retained pre-PR per-window implementation.
// The acceptance bar is a >= 5x sweep/naive ratio.
func BenchmarkCheckAllWindows(b *testing.B) {
	g := topology.Baseline(16)
	b.Run("sweep", func(b *testing.B) {
		a := midigraph.NewAnalyzer()
		buf := a.CheckAllWindows(g, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = a.CheckAllWindows(g, buf)
			if !midigraph.AllOK(buf) {
				b.Fatal("baseline violated a window property")
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !midigraph.AllOK(g.CheckAllWindowsNaive()) {
				b.Fatal("baseline violated a window property")
			}
		}
	})
}

// BenchmarkCheckFamilies: the two families the characterization theorem
// actually consumes, as single sweeps on a reused Analyzer (0 allocs/op,
// CI-gated).
func BenchmarkCheckFamilies(b *testing.B) {
	g := topology.Baseline(16)
	a := midigraph.NewAnalyzer()
	prefix := a.CheckPrefix(g, nil)
	suffix := a.CheckSuffix(g, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prefix = a.CheckPrefix(g, prefix)
		suffix = a.CheckSuffix(g, suffix)
		if !midigraph.AllOK(prefix) || !midigraph.AllOK(suffix) {
			b.Fatal("baseline violated a family property")
		}
	}
}

// BenchmarkIsoToBaseline (T4): explicit isomorphism construction.
func BenchmarkIsoToBaseline(b *testing.B) {
	g := topology.MustBuild(topology.NameOmega, 10).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := equiv.IsoToBaseline(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPIPIDConnection (T5): connection induced by one theta plus
// its independence decision.
func BenchmarkPIPIDConnection(b *testing.B) {
	theta := pipid.BitReversal(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := conn.FromIndexPerm(theta)
		if !c.IsIndependent() {
			b.Fatal("not independent")
		}
	}
}

// BenchmarkEquivalentMatrix: the worker-parallel pairwise catalog sweep
// (characterize once per graph, shard the pairs). Also the -race smoke
// target CI runs so the parallel equivalence path stays race-clean.
func BenchmarkEquivalentMatrix(b *testing.B) {
	nets, err := topology.BuildAll(8)
	if err != nil {
		b.Fatal(err)
	}
	graphs := make([]*midigraph.Graph, len(nets))
	for i, nw := range nets {
		graphs[i] = nw.Graph
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := equiv.PairwiseEquivalent(graphs, workers)
				if err != nil {
					b.Fatal(err)
				}
				if !m[0][len(m)-1] {
					b.Fatal("catalog pair rejected")
				}
			}
		})
	}
}

// BenchmarkServeCheckCached: a warm /v1/check hit through the minserve
// LRU — the full HTTP handler path minus the analysis it caches away.
func BenchmarkServeCheckCached(b *testing.B) {
	h := minserve.NewHandler(minserve.Config{})
	const body = `{"network":"indirect-binary-cube","stages":10}`
	request := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/v1/check", strings.NewReader(body))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}
	cold := request() // populate the cache
	if cold.Code != 200 {
		b.Fatalf("cold check failed: %s", cold.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := request()
		if rec.Code != 200 || rec.Header().Get("X-Cache") != "HIT" {
			b.Fatal("expected a cache hit")
		}
	}
}

// BenchmarkServeBatchWarm: a warm 16-item check batch through
// /v1/batch versus 16 sequential warm single calls — the amortization
// the batch API exists for (one request parse, one admission slot, one
// response write for N cache probes). The two sub-benchmarks report
// ns per *item*, so batch/item must beat single/item by >= 2x.
func BenchmarkServeBatchWarm(b *testing.B) {
	const items = 16
	bodies := make([]string, items)
	for i := range bodies {
		bodies[i] = fmt.Sprintf(`{"network":"indirect-binary-cube","stages":%d}`, 3+i%8)
	}
	var batch strings.Builder
	batch.WriteString(`{"requests":[`)
	for i, body := range bodies {
		if i > 0 {
			batch.WriteByte(',')
		}
		fmt.Fprintf(&batch, `{"op":"check","request":%s}`, body)
	}
	batch.WriteString(`]}`)
	batchBody := batch.String()

	newWarmHandler := func(b *testing.B) http.Handler {
		h := minserve.NewHandler(minserve.Config{})
		for _, body := range bodies {
			req := httptest.NewRequest("POST", "/v1/check", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("warm: %s", rec.Body.String())
			}
		}
		return h
	}

	b.Run("single/item", func(b *testing.B) {
		h := newWarmHandler(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			body := bodies[i%items]
			req := httptest.NewRequest("POST", "/v1/check", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatal("single failed")
			}
		}
	})
	b.Run("batch/item", func(b *testing.B) {
		h := newWarmHandler(b)
		b.ReportAllocs()
		b.ResetTimer()
		// Each iteration serves `items` requests; report per-item cost.
		for i := 0; i < b.N; i += items {
			req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(batchBody))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatal("batch failed")
			}
		}
	})
}

// BenchmarkCounterexampleCheck (T6): characterization check rejecting
// the tail-cycle Banyan.
func BenchmarkCounterexampleCheck(b *testing.B) {
	g, err := randnet.TailCycleBanyan(10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if equiv.IsBaselineEquivalent(g) {
			b.Fatal("counterexample accepted")
		}
	}
}

// BenchmarkSimUniform (T7): one uniform wave through the fabric on a
// reused WaveRunner — the steady-state hot loop, 0 allocs/op.
func BenchmarkSimUniform(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 8).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2, 0))
	pattern := sim.Uniform()
	runner := f.NewWaveRunner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunTraffic(pattern, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineThroughput: the parallel trial engine at n=10 under
// uniform traffic, swept over worker counts. On a multi-core machine
// the workers=8 case should run >= 3x faster than workers=1; per-trial
// PCG streams make the aggregates identical across the sweep.
func BenchmarkEngineThroughput(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	const waves = 128
	pattern := sim.Uniform()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := engine.RunWaves(context.Background(), f, pattern, waves, engine.Config{Workers: workers, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if st.Delivered == 0 {
					b.Fatal("engine delivered nothing")
				}
			}
		})
	}
}

// BenchmarkEngineWaveLoop pins the zero-allocation claim: the
// steady-state wave loop (reused runner, engine-derived stream) must
// report 0 allocs/op.
func BenchmarkEngineWaveLoop(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	runner := f.NewWaveRunner()
	rng := engine.NewRand(1, 0)
	pattern := sim.Uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.RunTraffic(pattern, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineBuffered: sharded replications of the buffered model
// on per-worker reused runners.
func BenchmarkEngineBuffered(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameBaseline, 6).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.BufferedConfig{Load: 0.6, Queue: 4, Lanes: 2, Cycles: 200, Warmup: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunBuffered(context.Background(), f, cfg, 8, engine.Config{Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferedRunner pins the buffered engine's zero-allocation
// claim: the steady-state replication loop (reused BufferedRunner,
// engine-derived stream) must report 0 allocs/op. CI gates on this.
func BenchmarkBufferedRunner(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 6).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := f.NewBufferedRunner(sim.BufferedConfig{
		Load: 0.8, Queue: 4, Lanes: 2, Cycles: 200, Warmup: 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := engine.NewRand(5, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := runner.Run(rng)
		if res.Delivered == 0 {
			b.Fatal("nothing delivered")
		}
	}
}

// BenchmarkFabricKernel pins the unified fabric kernel both runners
// drive: a full fabric's worth of crossbar decisions (every stage, every
// cell, a rotating destination) plus the inter-stage forward, on the
// intact fabric and under an active fault state. Both paths must be
// 0 allocs/op; CI gates on it.
func BenchmarkFabricKernel(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, fs *sim.FaultState) {
		b.ReportAllocs()
		b.ResetTimer()
		sink := uint64(0)
		for i := 0; i < b.N; i++ {
			sink += f.SteerSweep(fs, i)
		}
		if sink == 0 {
			b.Fatal("kernel steered nothing")
		}
	}
	b.Run("intact", func(b *testing.B) { run(b, nil) })
	b.Run("faulted", func(b *testing.B) {
		fs := f.NewFaultState()
		err := fs.Sample(sim.FaultPlan{SwitchDeadRate: 0.02, SwitchStuckRate: 0.02, LinkDownRate: 0.01},
			engine.NewFaultRand(7, 0))
		if err != nil {
			b.Fatal(err)
		}
		run(b, fs)
	})
}

// BenchmarkFaultedWaveLoop pins the degraded hot path: the steady-state
// wave loop with a per-wave fault resample (exactly what the engine
// does per trial, minus the per-trial rng derivation). Must stay
// 0 allocs/op; CI gates on it.
func BenchmarkFaultedWaveLoop(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	runner := f.NewWaveRunner()
	fs := f.NewFaultState()
	if err := runner.SetFaults(fs); err != nil {
		b.Fatal(err)
	}
	plan := sim.FaultPlan{SwitchDeadRate: 0.02, LinkDownRate: 0.01}
	trafficRng := engine.NewRand(1, 0)
	faultRng := engine.NewFaultRand(1, 0)
	pattern := sim.Uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Sample(plan, faultRng); err != nil {
			b.Fatal(err)
		}
		if _, err := runner.RunTraffic(pattern, trafficRng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBitWaveLoop pins the bit-sliced executor's throughput claim:
// one iteration steers a full 64-wave batch exactly as the engine does —
// per-batch PCG reseeding from the trial-indexed engine streams, reused
// BitWaveRunner — and must report 0 allocs/op. The ns/wave metric is
// the number to compare against BenchmarkEngineWaveLoop's ns/op (one
// scalar wave); the acceptance bar is >= 8x. CI gates on the allocs.
func BenchmarkBitWaveLoop(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := f.NewBitWaveRunner()
	if err != nil {
		b.Fatal(err)
	}
	var pcg [64]rand.PCG
	rngs := make([]*rand.Rand, 64)
	for j := range rngs {
		rngs[j] = rand.New(&pcg[j])
	}
	pattern := sim.Uniform()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := uint64(i) * 64
		for j := range pcg {
			pcg[j].Seed(engine.SeedPair(1, t0+uint64(j)))
		}
		if _, err := runner.RunTraffic(pattern, rngs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/64, "ns/wave")
}

// BenchmarkBitFabricKernel pins the word-parallel plane algebra itself,
// mirroring BenchmarkFabricKernel: one full-load 64-lane pass over every
// stage with synthetic salts, on the intact fabric and with a sampled
// fault state folded into the per-stage lane masks. Both paths must be
// 0 allocs/op; CI gates on it.
func BenchmarkBitFabricKernel(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameOmega, 10).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	runner, err := f.NewBitWaveRunner()
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		sink := uint64(0)
		for i := 0; i < b.N; i++ {
			sink += runner.BitSteerSweep(i)
		}
		if sink == 0 {
			b.Fatal("kernel steered nothing")
		}
	}
	b.Run("intact", run)
	b.Run("faulted", func(b *testing.B) {
		fs := f.NewFaultState()
		err := fs.Sample(sim.FaultPlan{SwitchDeadRate: 0.02, SwitchStuckRate: 0.02, LinkDownRate: 0.01},
			engine.NewFaultRand(7, 0))
		if err != nil {
			b.Fatal(err)
		}
		bfs := f.NewBitFaultState()
		if err := bfs.SetAll(fs); err != nil {
			b.Fatal(err)
		}
		if err := runner.SetFaults(bfs); err != nil {
			b.Fatal(err)
		}
		run(b)
	})
}

// BenchmarkSimBuffered (T7): buffered queueing simulation.
func BenchmarkSimBuffered(b *testing.B) {
	f, err := sim.NewFabric(topology.MustBuild(topology.NameBaseline, 6).LinkPerms)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.RunBuffered(sim.BufferedConfig{Load: 0.6, Queue: 4, Cycles: 200, Warmup: 20}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouteAllPairs (T8): all N^2 tag routes.
func BenchmarkRouteAllPairs(b *testing.B) {
	r, err := route.NewRouter(topology.MustBuild(topology.NameFlip, 8).IndexPerms)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.VerifyAllPairs(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndependenceDef and BenchmarkIndependenceFast (T9 ablation).
func BenchmarkIndependenceDef(b *testing.B) {
	c := conn.RandomIndependent(rand.New(rand.NewPCG(4, 0)), 9, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.IsIndependentDef() {
			b.Fatal("not independent")
		}
	}
}

func BenchmarkIndependenceFast(b *testing.B) {
	c := conn.RandomIndependent(rand.New(rand.NewPCG(4, 0)), 9, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.IsIndependent() {
			b.Fatal("not independent")
		}
	}
}

// BenchmarkCharacterization (T10): the full check at a larger size.
func BenchmarkCharacterization(b *testing.B) {
	g := topology.MustBuild(topology.NameIndirectCube, 12).Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !equiv.Check(g).Equivalent() {
			b.Fatal("rejected")
		}
	}
}

// BenchmarkExperimentF1 keeps the figure path itself honest.
func BenchmarkExperimentF1(b *testing.B) {
	e, ok := experiments.ByID("F1")
	if !ok {
		b.Fatal("F1 missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// codecFixtureRequest is a fault-heavy simulate request: the shape the
// binary wire codec exists for (sweeps ship large pinned fault plans).
func codecFixtureRequest() *codec.SimulateRequest {
	plan := &min.FaultPlan{Faults: make([]min.Fault, 128)}
	for i := range plan.Faults {
		f := min.Fault{Stage: i % 5, Cell: i % 16}
		switch i % 3 {
		case 0:
			f.Kind = min.SwitchDead
		case 1:
			f.Kind = min.SwitchStuck1
		default:
			f.Kind = min.LinkDown
			f.Link = i % 32
		}
		plan.Faults[i] = f
	}
	return &codec.SimulateRequest{
		NetworkSpec: codec.NetworkSpec{Network: "omega", Stages: 5},
		Seed:        7,
		Waves:       64,
		Faults:      plan,
	}
}

// BenchmarkCodecEncode gates the binary wire codec's encode hot loop:
// steady-state re-encoding of a fault-heavy simulate request must not
// allocate (CI fails the build on a nonzero allocs/op).
func BenchmarkCodecEncode(b *testing.B) {
	v := codecFixtureRequest()
	var e codec.Encoder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.SimulateRequest(v)
	}
}

// BenchmarkCodecDecode gates the decode hot loop: decoding the same
// frame into a reused target must reach zero allocs/op once the
// target's slices and intern table are warm.
func BenchmarkCodecDecode(b *testing.B) {
	wire, err := codec.Encode(codecFixtureRequest())
	if err != nil {
		b.Fatal(err)
	}
	var d codec.Decoder
	dst := new(codec.SimulateRequest)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reset(wire)
		if err := d.SimulateRequest(dst); err != nil {
			b.Fatal(err)
		}
	}
}
