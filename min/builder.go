package min

import (
	"fmt"

	"minequiv/internal/pipid"
)

// StageConn is one inter-stage connection pattern for the Builder. The
// constructors below cover the index-digit permutations the classical
// networks are made of; IndexBits accepts an arbitrary theta.
type StageConn struct {
	desc string
	make func(w int) (pipid.IndexPerm, error)
}

// String names the connection (with the bit width still unbound).
func (c StageConn) String() string { return c.desc }

// PerfectShuffle is sigma: a circular left shift of the link-label bits.
// Every stage of the Omega network.
func PerfectShuffle() StageConn {
	return StageConn{desc: "perfect-shuffle", make: func(w int) (pipid.IndexPerm, error) {
		return pipid.PerfectShuffle(w), nil
	}}
}

// InverseShuffle is sigma^{-1}: a circular right shift. Every stage of
// the Flip network.
func InverseShuffle() StageConn {
	return StageConn{desc: "inverse-shuffle", make: func(w int) (pipid.IndexPerm, error) {
		return pipid.InverseShuffle(w), nil
	}}
}

// Butterfly is beta_k: the transposition of bit 0 and bit k, for k in
// [1, stages-1]. The Indirect Binary Cube uses beta_1..beta_{n-1}
// ascending; the Modified Data Manipulator uses them descending.
func Butterfly(k int) StageConn {
	return StageConn{desc: fmt.Sprintf("butterfly(%d)", k), make: func(w int) (pipid.IndexPerm, error) {
		if k < 1 || k > w-1 {
			return pipid.IndexPerm{}, fmt.Errorf("min: butterfly index %d out of range [1,%d]", k, w-1)
		}
		return pipid.Butterfly(w, k), nil
	}}
}

// Subshuffle is sigma_k: the perfect shuffle restricted to the low k
// bits, for k in [2, stages]. Stage s of the Reverse Baseline network
// is Subshuffle(s+2).
func Subshuffle(k int) StageConn {
	return StageConn{desc: fmt.Sprintf("subshuffle(%d)", k), make: func(w int) (pipid.IndexPerm, error) {
		if k < 2 || k > w {
			return pipid.IndexPerm{}, fmt.Errorf("min: subshuffle width %d out of range [2,%d]", k, w)
		}
		return pipid.Subshuffle(w, k), nil
	}}
}

// InverseSubshuffle is sigma_k^{-1}, for k in [2, stages]. Stage s of
// the Baseline network is InverseSubshuffle(stages-s).
func InverseSubshuffle(k int) StageConn {
	return StageConn{desc: fmt.Sprintf("inverse-subshuffle(%d)", k), make: func(w int) (pipid.IndexPerm, error) {
		if k < 2 || k > w {
			return pipid.IndexPerm{}, fmt.Errorf("min: inverse-subshuffle width %d out of range [2,%d]", k, w)
		}
		return pipid.InverseSubshuffle(w, k), nil
	}}
}

// IndexBits is an arbitrary index-digit permutation: theta[j] is the
// source bit position of output bit j. The length must equal the
// builder's stage count.
func IndexBits(theta ...int) StageConn {
	th := append([]int(nil), theta...)
	return StageConn{desc: fmt.Sprintf("index-bits%v", th), make: func(w int) (pipid.IndexPerm, error) {
		if len(th) != w {
			return pipid.IndexPerm{}, fmt.Errorf("min: index perm on %d bits, want %d", len(th), w)
		}
		return pipid.New(append([]int(nil), th...))
	}}
}

// Builder assembles a PIPID network stage by stage. Methods chain; the
// first error sticks and is reported by Build.
//
//	nw, err := min.NewBuilder(4).
//		Stage(min.Butterfly(2)).
//		Stage(min.Butterfly(1)).
//		Stage(min.Butterfly(3)).
//		Build("my-cascade")
type Builder struct {
	stages int
	conns  []pipid.IndexPerm
	descs  []string
	err    error
}

// NewBuilder starts a network with the given stage count (in
// [2, MaxStages]); Stage must then be called stages-1 times (once per
// inter-stage connection), or StageAll once.
func NewBuilder(stages int) *Builder {
	b := &Builder{stages: stages}
	if stages < 2 || stages > MaxStages {
		b.err = fmt.Errorf("min: stage count %d out of range [2,%d]", stages, MaxStages)
	}
	return b
}

// Stage appends one inter-stage connection.
func (b *Builder) Stage(c StageConn) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.conns) == b.stages-1 {
		b.err = fmt.Errorf("min: too many stages: %d-stage network has %d connections", b.stages, b.stages-1)
		return b
	}
	ip, err := c.make(b.stages)
	if err != nil {
		b.err = err
		return b
	}
	b.conns = append(b.conns, ip)
	b.descs = append(b.descs, c.desc)
	return b
}

// StageAll fills every remaining connection with the same pattern (the
// Omega and Flip shape: one connector repeated).
func (b *Builder) StageAll(c StageConn) *Builder {
	for b.err == nil && len(b.conns) < b.stages-1 {
		b.Stage(c)
	}
	return b
}

// Build finalizes the network. Every one of the stages-1 connections
// must have been supplied.
func (b *Builder) Build(name string) (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.conns) != b.stages-1 {
		return nil, fmt.Errorf("min: %d of %d connections supplied (have: %v)",
			len(b.conns), b.stages-1, b.descs)
	}
	thetas := make([][]int, len(b.conns))
	for s, ip := range b.conns {
		thetas[s] = ip.Theta
	}
	return FromIndexPerms(name, b.stages, thetas)
}
