package min_test

import (
	"context"
	"fmt"

	"minequiv/min"
)

// Build a classical network and check the paper's characterization.
func ExampleCheck() {
	omega := min.MustBuild(min.Omega, 4)
	rep := min.Check(omega)
	fmt.Println(rep.Equivalent, rep.Banyan, len(rep.Violations()))

	tailCycle, _ := min.TailCycle(4)
	rep = min.Check(tailCycle)
	fmt.Println(rep.Equivalent, rep.Banyan, len(rep.Violations()) > 0)
	// Output:
	// true true 0
	// false true true
}

// Assemble a butterfly cascade with the Builder; every order of the
// butterflies is baseline-equivalent.
func ExampleBuilder() {
	nw, err := min.NewBuilder(4).
		Stage(min.Butterfly(2)).
		Stage(min.Butterfly(1)).
		Stage(min.Butterfly(3)).
		Build("cascade-213")
	if err != nil {
		panic(err)
	}
	fmt.Println(nw.Terminals(), min.IsBaselineEquivalent(nw))
	// Output: 16 true
}

// Bit-directed routing: stage s of a PIPID network reads one fixed
// destination bit.
func ExampleRoute() {
	omega := min.MustBuild(min.Omega, 4)
	tags, _ := min.TagPositions(omega)
	fmt.Println("tags:", tags)
	path, _ := min.Route(omega, 5, 12)
	for _, h := range path.Hops {
		fmt.Printf("stage %d: cell %d out %d\n", h.Stage, h.Cell, h.OutPort)
	}
	// Output:
	// tags: [3 2 1 0]
	// stage 0: cell 2 out 1
	// stage 1: cell 5 out 1
	// stage 2: cell 3 out 0
	// stage 3: cell 6 out 0
}

// Deterministic seeded simulation on the parallel engine.
func ExampleSimulate() {
	omega := min.MustBuild(min.Omega, 6)
	st, err := min.Simulate(context.Background(), omega,
		min.WithWaves(400), min.WithSeed(42))
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput %.2f (analytic %.2f)\n",
		st.Throughput.Mean, min.AnalyticThroughput(6, 1.0))
	// Output: throughput 0.36 (analytic 0.36)
}
