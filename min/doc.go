// Package min is the public face of this module: one coherent API over
// the multistage-interconnection-network theory of Bermond & Fourneau
// ("Independent Connections: An Easy Characterization of
// Baseline-Equivalent Multistage Interconnection Networks", ICPP 1988)
// and the packet-simulation engine built on top of it.
//
// Everything under internal/ is plumbing; programs outside this module
// — and this module's own CLIs (minctl, minsim, minserve) and examples
// — consume only this package.
//
// # Networks
//
// A Network is an n-stage MIN on N = 2^n terminals. Build one from the
// classical catalog, from explicit per-stage permutations, or with the
// fluent Builder:
//
//	omega, _ := min.Build(min.Omega, 4)
//	custom, _ := min.NewBuilder(4).
//		Stage(min.Butterfly(1)).
//		Stage(min.Butterfly(3)).
//		Stage(min.Butterfly(2)).
//		Build("my-cascade")
//	cube, _ := min.NewBuilder(4).StageAll(min.PerfectShuffle()).Build("omega-again")
//
// # Theory
//
// Check evaluates the paper's characterization (Banyan + P(1,*) +
// P(*,n)) and returns a structured Report; Iso constructs the explicit
// isomorphism onto the Baseline network that the theorem promises;
// Equivalent decides topological equivalence of two networks.
//
//	rep := min.Check(omega)        // rep.Equivalent == true
//	iso, _ := min.Iso(omega)       // per-stage node maps onto Baseline
//	ok, _ := min.Equivalent(omega, custom)
//
// # Routing
//
// Route walks a packet from an input terminal to an output terminal.
// PIPID-defined networks use the paper's §4 bit-directed destination
// tags (TagPositions exposes the schedule); any other unique-path
// network falls back to a reachability router.
//
//	path, _ := min.Route(omega, 5, 12)
//
// # Simulation
//
// Simulate (synchronous unbuffered waves, drop on conflict) and
// SimulateBuffered (multi-lane FIFO store-and-forward) run the parallel
// trial engine with functional options. Runs are deterministic in
// (seed, trial count) — never in worker count — and honour context
// cancellation within one trial:
//
//	stats, _ := min.Simulate(ctx, omega,
//		min.WithWaves(500), min.WithScenario("transpose"),
//		min.WithSeed(7), min.WithWorkers(4))
//	bstats, _ := min.SimulateBuffered(ctx, omega,
//		min.WithLoad(0.8), min.WithQueue(4), min.WithLanes(2),
//		min.WithCycles(5000))
//
// Scenarios lists the named traffic patterns accepted by WithScenario.
//
// # Faults
//
// A FaultPlan degrades the fabric: pinned faults (dead switches, jammed
// crossbars, severed links) and/or Bernoulli rates redrawn per trial.
// WithFaults threads it through either simulation model — degraded runs
// are reproducible from (seed, plan) alone and worker-count invariant —
// and RouteUnderFaults / CountAdmissibleUnderFaults evaluate routing on
// the surviving wiring:
//
//	plan := min.FaultPlan{SwitchDeadRate: 0.02}
//	dstats, _ := min.Simulate(ctx, omega, min.WithFaults(plan), min.WithSeed(7))
//	p, _ := min.RouteUnderFaults(omega, 5, 12,
//		min.FaultPlan{Faults: []min.Fault{{Kind: min.SwitchDead, Stage: 1, Cell: 3}}})
package min
