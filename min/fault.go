package min

import (
	"fmt"

	"minequiv/internal/route"
	"minequiv/internal/sim"
)

// FaultKind names one class of fabric failure.
type FaultKind string

const (
	// SwitchDead kills a whole 2x2 switch: every packet at the cell is
	// discarded and routing treats the cell as absent.
	SwitchDead FaultKind = "switch-dead"
	// SwitchStuck0 jams a switch's crossbar so every packet leaves on
	// port 0, wherever it was headed.
	SwitchStuck0 FaultKind = "switch-stuck0"
	// SwitchStuck1 jams the crossbar toward port 1.
	SwitchStuck1 FaultKind = "switch-stuck1"
	// LinkDown severs one outlink of a stage (link = cell*2+port). The
	// last stage's outlinks are the output terminals.
	LinkDown FaultKind = "link-down"
)

// Fault pins one failure to a fabric element. Switch faults address
// (Stage, Cell); LinkDown addresses (Stage, Link).
type Fault struct {
	Kind  FaultKind `json:"kind"`
	Stage int       `json:"stage"`
	Cell  int       `json:"cell,omitempty"`
	Link  int       `json:"link,omitempty"`
}

// FaultPlan describes how a fabric degrades: a fixed list of pinned
// faults plus Bernoulli rates for random faults redrawn each trial.
// Pass it to Simulate/SimulateBuffered with WithFaults — degraded runs
// are reproducible from (seed, plan) alone — or to RouteUnderFaults and
// CountAdmissibleUnderFaults (pinned faults only; routing has no trial
// index to sample random rates from).
type FaultPlan struct {
	Faults []Fault `json:"faults,omitempty"`

	// Per-element random fault rates, drawn independently per trial
	// from a dedicated rng stream (traffic draws are never perturbed).
	SwitchDeadRate  float64 `json:"switchDeadRate,omitempty"`
	SwitchStuckRate float64 `json:"switchStuckRate,omitempty"`
	LinkDownRate    float64 `json:"linkDownRate,omitempty"`
}

// Empty reports whether the plan describes an intact fabric.
func (p FaultPlan) Empty() bool {
	return len(p.Faults) == 0 && p.SwitchDeadRate == 0 && p.SwitchStuckRate == 0 && p.LinkDownRate == 0
}

// internal converts the public plan to the simulation layer's form.
func (p FaultPlan) internal() (sim.FaultPlan, error) {
	out := sim.FaultPlan{
		SwitchDeadRate:  p.SwitchDeadRate,
		SwitchStuckRate: p.SwitchStuckRate,
		LinkDownRate:    p.LinkDownRate,
	}
	if len(p.Faults) > 0 {
		out.Faults = make([]sim.Fault, len(p.Faults))
		for i, f := range p.Faults {
			var kind sim.FaultKind
			switch f.Kind {
			case SwitchDead:
				kind = sim.SwitchDead
			case SwitchStuck0:
				kind = sim.SwitchStuck0
			case SwitchStuck1:
				kind = sim.SwitchStuck1
			case LinkDown:
				kind = sim.LinkDown
			default:
				return sim.FaultPlan{}, fmt.Errorf("min: fault %d: unknown kind %q", i, f.Kind)
			}
			out.Faults[i] = sim.Fault{Kind: kind, Stage: f.Stage, Cell: f.Cell, Link: f.Link}
		}
	}
	return out, nil
}

// faultyRouter builds the fault-aware reachability router for the
// plan's pinned faults.
func (nw *Network) faultyRouter(plan FaultPlan) (*route.FaultyRouter, error) {
	if plan.SwitchDeadRate != 0 || plan.SwitchStuckRate != 0 || plan.LinkDownRate != 0 {
		return nil, fmt.Errorf("min: routing under faults takes pinned faults only; random rates need a simulation trial to sample in (use WithFaults)")
	}
	p, err := plan.internal()
	if err != nil {
		return nil, err
	}
	f, err := nw.compiledFabric()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(f); err != nil {
		return nil, err
	}
	h := nw.CellsPerStage()
	stages := nw.Stages()
	mode := make([]uint8, stages*h)
	linkDown := make([]bool, stages*nw.Terminals())
	for _, flt := range p.Faults {
		switch flt.Kind {
		case sim.SwitchDead:
			mode[flt.Stage*h+flt.Cell] = route.SwitchDead
		case sim.SwitchStuck0:
			mode[flt.Stage*h+flt.Cell] = route.SwitchStuck0
		case sim.SwitchStuck1:
			mode[flt.Stage*h+flt.Cell] = route.SwitchStuck1
		case sim.LinkDown:
			linkDown[flt.Stage*nw.Terminals()+flt.Link] = true
		}
	}
	return route.NewFaultyRouter(nw.topo.LinkPerms, route.FaultSpec{
		SwitchMode: func(stage, cell int) uint8 { return mode[stage*h+cell] },
		LinkDown:   func(stage, out int) bool { return linkDown[stage*nw.Terminals()+out] },
	})
}

// RouteUnderFaults computes the path from src to dst on the degraded
// fabric described by the plan's pinned faults, via the reachability
// fallback the tag router also rests on: dead switches, jammed
// crossbars and severed links are avoided, and the route fails when the
// surviving fabric offers no path. On a Banyan network the surviving
// path, when it exists, is the intact unique path.
func RouteUnderFaults(nw *Network, src, dst int, plan FaultPlan) (Path, error) {
	if src < 0 || dst < 0 {
		return Path{}, fmt.Errorf("min: negative terminal (src=%d dst=%d)", src, dst)
	}
	if src >= nw.Terminals() || dst >= nw.Terminals() {
		return Path{}, fmt.Errorf("min: terminal out of range [0,%d): src=%d dst=%d", nw.Terminals(), src, dst)
	}
	r, err := nw.faultyRouter(plan)
	if err != nil {
		return Path{}, err
	}
	p, err := r.Route(uint64(src), uint64(dst))
	if err != nil {
		return Path{}, err
	}
	return fromInternalPath(p), nil
}

// CountAdmissibleUnderFaults enumerates all N! full permutations
// (practical only for N <= 8, i.e. 3 stages) and counts those the
// degraded fabric can route without any link conflict: every source
// needs a surviving path and no two paths may share an outlink. With an
// empty plan this reproduces the classical 2^(switch count) of
// CountAdmissible — unlike CountAdmissible it does not require a PIPID
// construction, because it rides the reachability fallback. Note the
// fragility corollary it exposes: a conflict-free full permutation
// saturates every outlink of every stage of a Banyan, so any single
// fault drops the count to zero — degraded fabrics are measured by
// partial traffic (Simulate with WithFaults), not full permutations.
func CountAdmissibleUnderFaults(nw *Network, plan FaultPlan) (admissible, total uint64, err error) {
	r, err := nw.faultyRouter(plan)
	if err != nil {
		return 0, 0, err
	}
	return r.CountAdmissible()
}
