package min

import (
	"context"
	"fmt"

	"minequiv/internal/engine"
	"minequiv/internal/sim"
)

// Stat summarizes one per-trial metric: mean, sample standard deviation
// and the half-width of the normal-approximation 95% confidence
// interval.
type Stat struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	CI95 float64 `json:"ci95"`
}

func fromEngineStat(s engine.Stats) Stat {
	return Stat{N: s.N, Mean: s.Mean, Std: s.Std, CI95: s.CI95()}
}

// WaveStats aggregates a Simulate run: independent synchronous waves
// through the unbuffered (drop-on-conflict) switch model.
type WaveStats struct {
	Network   string `json:"network"`
	Stages    int    `json:"stages"`
	Terminals int    `json:"terminals"`
	Scenario  string `json:"scenario"`
	Waves     int    `json:"waves"`
	Seed      uint64 `json:"seed"`
	Offered   int    `json:"offered"`
	Delivered int    `json:"delivered"`
	Dropped   int    `json:"dropped"`
	Misrouted int    `json:"misrouted"`
	// FaultDropped is the subset of Dropped killed directly by injected
	// faults (dead switches, severed links); omitted when zero so
	// fault-free responses are unchanged.
	FaultDropped int `json:"faultDropped,omitempty"`
	// Throughput is the pooled delivered/offered ratio over all waves.
	Throughput Stat `json:"throughput"`
}

// BufferedStats aggregates a SimulateBuffered run: independent
// replications of the multi-lane FIFO store-and-forward model.
type BufferedStats struct {
	Network      string `json:"network"`
	Stages       int    `json:"stages"`
	Terminals    int    `json:"terminals"`
	Scenario     string `json:"scenario"`
	Replications int    `json:"replications"`
	Seed         uint64 `json:"seed"`
	Injected     int    `json:"injected"`
	Rejected     int    `json:"rejected"`
	Delivered    int    `json:"delivered"`
	Dropped      int    `json:"dropped"`
	// FaultDropped is the subset of Dropped killed directly by injected
	// faults; omitted when zero.
	FaultDropped int `json:"faultDropped,omitempty"`
	// Misrouted counts wrong-terminal exits forced by stuck last-stage
	// switches; omitted when zero.
	Misrouted      int       `json:"misrouted,omitempty"`
	InFlight       int       `json:"inFlight"`
	MaxOccupancy   int       `json:"maxOccupancy"`
	Throughput     Stat      `json:"throughput"` // delivered per terminal per cycle
	Latency        Stat      `json:"latency"`    // mean delivery latency, cycles
	LatencyP50     Stat      `json:"latencyP50"`
	LatencyP95     Stat      `json:"latencyP95"`
	LatencyP99     Stat      `json:"latencyP99"`
	StageOccupancy []float64 `json:"stageOccupancy"` // mean queued packets per stage
}

// Arbiter names the output-port arbitration policy of the buffered
// model.
type Arbiter string

const (
	ArbiterRandom     Arbiter = "random"     // fair coin per conflict
	ArbiterRoundRobin Arbiter = "roundrobin" // loser holds priority next time
)

// Kernel names the wave-model executor. The kernels are byte-identical
// per trial stream — KernelBit steers 64 Monte Carlo waves per machine
// word as uint64 bit-planes, KernelScalar walks packets one by one —
// so the choice affects only throughput, never results.
type Kernel string

const (
	// KernelAuto (the default) uses the bit-sliced kernel whenever the
	// network qualifies (Banyan unique-path wiring, at most 16 stages;
	// all six of the paper's networks do) and falls back to scalar.
	KernelAuto Kernel = "auto"
	// KernelScalar forces the one-packet-at-a-time reference kernel.
	KernelScalar Kernel = "scalar"
	// KernelBit forces the bit-sliced kernel; Simulate fails when the
	// network does not qualify rather than silently degrading.
	KernelBit Kernel = "bit"
)

// LaneSelect names the lane-choice policy on enqueue in the buffered
// model.
type LaneSelect string

const (
	LaneShortest LaneSelect = "shortest" // least-occupied lane with room
	LaneByDst    LaneSelect = "bydst"    // lane dst mod lanes
	LaneRandom   LaneSelect = "random"   // uniformly random lane with room
)

// simOptions carries every tunable of both models; each Option records
// which model(s) it applies to so a misapplied option is an error, not
// a silent no-op.
type simOptions struct {
	workers  int
	seed     uint64
	scenario string
	loadSet  bool
	params   sim.ScenarioParams
	faults   *FaultPlan

	waves  int    // wave model
	kernel Kernel // wave model

	reps, queue, lanes, cycles, warmup int // buffered model
	arbiter                            Arbiter
	laneSelect                         LaneSelect

	waveOnly, bufferedOnly []string // names of model-specific options used
}

func defaultSimOptions() simOptions {
	return simOptions{
		seed:     1,
		scenario: "uniform",
		params:   sim.DefaultScenarioParams(),
		waves:    500,
		kernel:   KernelAuto,
		reps:     1, queue: 4, lanes: 1, cycles: 5000, warmup: 500,
		arbiter: ArbiterRandom, laneSelect: LaneShortest,
	}
}

// Option tunes Simulate and SimulateBuffered. Options specific to the
// other model are rejected with an error.
type Option func(*simOptions)

// WithWorkers shards trials across n goroutines (0 = GOMAXPROCS).
// Results never depend on the worker count.
func WithWorkers(n int) Option { return func(o *simOptions) { o.workers = n } }

// WithSeed sets the root rng seed; trial t always runs on the stream
// derived from (seed, t), making runs bit-reproducible.
func WithSeed(seed uint64) Option { return func(o *simOptions) { o.seed = seed } }

// WithScenario selects a named traffic pattern from the registry (see
// Scenarios). Default "uniform".
func WithScenario(name string) Option { return func(o *simOptions) { o.scenario = name } }

// WithLoad sets the offered load per input per wave/cycle. Load-aware
// scenarios (bernoulli, bursty) consume it directly; every other
// scenario is thinned to it.
func WithLoad(load float64) Option {
	return func(o *simOptions) { o.params.Load = load; o.loadSet = true }
}

// WithHotspot tunes the hotspot scenario: each packet targets terminal
// dst with probability prob.
func WithHotspot(dst int, prob float64) Option {
	return func(o *simOptions) { o.params.HotDst = dst; o.params.HotProb = prob }
}

// WithBurst tunes the bursty scenario: a wave is a burst (at the
// WithLoad level) with probability burstProb, else offers idleLoad.
func WithBurst(burstProb, idleLoad float64) Option {
	return func(o *simOptions) { o.params.BurstProb = burstProb; o.params.IdleLoad = idleLoad }
}

// WithFaults degrades the fabric for the run (both models): the plan's
// pinned faults hold for every trial and its random rates are redrawn
// per trial from a dedicated rng stream, so results are reproducible
// from (seed, plan) alone, traffic draws are untouched, and aggregates
// stay identical for any worker count. An empty plan is the intact
// fabric.
func WithFaults(p FaultPlan) Option {
	return func(o *simOptions) { o.faults = &p }
}

// WithWaves sets the number of independent waves (wave model only).
func WithWaves(n int) Option {
	return func(o *simOptions) { o.waves = n; o.waveOnly = append(o.waveOnly, "WithWaves") }
}

// WithKernel selects the wave-model executor (wave model only); see
// Kernel. The default KernelAuto needs no configuration — use this to
// force the scalar oracle or to fail fast when the bit-sliced kernel
// is expected but the network does not qualify.
func WithKernel(k Kernel) Option {
	return func(o *simOptions) { o.kernel = k; o.waveOnly = append(o.waveOnly, "WithKernel") }
}

// WithReplications sets the number of independent replications
// (buffered model only).
func WithReplications(n int) Option {
	return func(o *simOptions) { o.reps = n; o.bufferedOnly = append(o.bufferedOnly, "WithReplications") }
}

// WithQueue sets the FIFO capacity per lane (buffered model only).
func WithQueue(n int) Option {
	return func(o *simOptions) { o.queue = n; o.bufferedOnly = append(o.bufferedOnly, "WithQueue") }
}

// WithLanes sets the FIFO lane count per switch input port (buffered
// model only).
func WithLanes(n int) Option {
	return func(o *simOptions) { o.lanes = n; o.bufferedOnly = append(o.bufferedOnly, "WithLanes") }
}

// WithCycles sets the measured cycle count (buffered model only).
func WithCycles(n int) Option {
	return func(o *simOptions) { o.cycles = n; o.bufferedOnly = append(o.bufferedOnly, "WithCycles") }
}

// WithWarmup sets the cycles discarded before measuring (buffered model
// only).
func WithWarmup(n int) Option {
	return func(o *simOptions) { o.warmup = n; o.bufferedOnly = append(o.bufferedOnly, "WithWarmup") }
}

// WithArbiter sets the output-port arbitration policy (buffered model
// only).
func WithArbiter(a Arbiter) Option {
	return func(o *simOptions) { o.arbiter = a; o.bufferedOnly = append(o.bufferedOnly, "WithArbiter") }
}

// WithLaneSelect sets the lane-choice policy (buffered model only).
func WithLaneSelect(l LaneSelect) Option {
	return func(o *simOptions) { o.laneSelect = l; o.bufferedOnly = append(o.bufferedOnly, "WithLaneSelect") }
}

// traffic resolves the scenario to a generator. thinByLoad composes
// non-load-aware scenarios with Bernoulli thinning to the offered load;
// the wave model thins only when WithLoad was given, the buffered model
// always does.
func (o *simOptions) traffic(thinByLoad bool) (sim.Traffic, error) {
	if o.params.Load < 0 || o.params.Load > 1 {
		return nil, fmt.Errorf("min: load %v out of [0,1]", o.params.Load)
	}
	sc, ok := sim.LookupScenario(o.scenario)
	if !ok {
		return nil, fmt.Errorf("min: unknown scenario %q (have %v)", o.scenario, sim.ScenarioNames())
	}
	tr := sc.New(o.params)
	if thinByLoad && !sc.LoadAware {
		tr = sim.Thinned(o.params.Load, tr)
	}
	return tr, nil
}

func applyOptions(opts []Option) simOptions {
	o := defaultSimOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// engineConfig assembles the engine run configuration, translating the
// public fault plan when one was given.
func (o *simOptions) engineConfig() (engine.Config, error) {
	cfg := engine.Config{Workers: o.workers, Seed: o.seed}
	if o.faults != nil && !o.faults.Empty() {
		p, err := o.faults.internal()
		if err != nil {
			return engine.Config{}, err
		}
		cfg.Faults = &p
	}
	return cfg, nil
}

// Simulate pushes independent synchronous waves of traffic through the
// network on the parallel trial engine: each wave injects one batch of
// packets, conflicting packets are dropped at the contended switch, and
// the pooled delivered/offered ratio is reported with a confidence
// interval. Cancelling ctx aborts within one wave and returns ctx.Err().
func Simulate(ctx context.Context, nw *Network, opts ...Option) (WaveStats, error) {
	o := applyOptions(opts)
	if len(o.bufferedOnly) > 0 {
		return WaveStats{}, fmt.Errorf("min: option %s applies to SimulateBuffered only", o.bufferedOnly[0])
	}
	f, err := nw.compiledFabric()
	if err != nil {
		return WaveStats{}, err
	}
	tr, err := o.traffic(o.loadSet)
	if err != nil {
		return WaveStats{}, err
	}
	cfg, err := o.engineConfig()
	if err != nil {
		return WaveStats{}, err
	}
	cfg.Kernel, err = engine.ParseKernel(string(o.kernel))
	if err != nil {
		return WaveStats{}, fmt.Errorf(`min: unknown kernel %q (want "auto", "scalar" or "bit")`, o.kernel)
	}
	st, err := engine.RunWaves(ctx, f, tr, o.waves, cfg)
	if err != nil {
		return WaveStats{}, err
	}
	return WaveStats{
		Network: nw.Name(), Stages: nw.Stages(), Terminals: nw.Terminals(),
		Scenario: o.scenario, Waves: st.Waves, Seed: o.seed,
		Offered: st.Offered, Delivered: st.Delivered,
		Dropped: st.Dropped, Misrouted: st.Misrouted,
		FaultDropped: st.FaultDropped,
		Throughput:   fromEngineStat(st.Throughput),
	}, nil
}

// SimulateBuffered runs independent replications of the store-and-
// forward model: every switch input port holds one or more FIFO lanes,
// contended outputs are arbitrated, backpressure stalls full queues,
// and per-replication throughput/latency statistics are aggregated.
// Cancelling ctx aborts within one replication and returns ctx.Err().
func SimulateBuffered(ctx context.Context, nw *Network, opts ...Option) (BufferedStats, error) {
	o := applyOptions(opts)
	if len(o.waveOnly) > 0 {
		return BufferedStats{}, fmt.Errorf("min: option %s applies to Simulate only", o.waveOnly[0])
	}
	f, err := nw.compiledFabric()
	if err != nil {
		return BufferedStats{}, err
	}
	if !o.loadSet {
		o.params.Load = 0.6 // conventional buffered default offered load
	}
	tr, err := o.traffic(true)
	if err != nil {
		return BufferedStats{}, err
	}
	bc := sim.BufferedConfig{
		Queue: o.queue, Lanes: o.lanes, Cycles: o.cycles, Warmup: o.warmup,
		Pattern: tr,
	}
	switch o.arbiter {
	case ArbiterRandom:
		bc.Arbiter = sim.ArbRandom
	case ArbiterRoundRobin:
		bc.Arbiter = sim.ArbRoundRobin
	default:
		return BufferedStats{}, fmt.Errorf("min: unknown arbiter %q", o.arbiter)
	}
	switch o.laneSelect {
	case LaneShortest:
		bc.LaneSelect = sim.LaneShortest
	case LaneByDst:
		bc.LaneSelect = sim.LaneByDst
	case LaneRandom:
		bc.LaneSelect = sim.LaneRandom
	default:
		return BufferedStats{}, fmt.Errorf("min: unknown lane policy %q", o.laneSelect)
	}
	cfg, err := o.engineConfig()
	if err != nil {
		return BufferedStats{}, err
	}
	st, err := engine.RunBuffered(ctx, f, bc, o.reps, cfg)
	if err != nil {
		return BufferedStats{}, err
	}
	return BufferedStats{
		Network: nw.Name(), Stages: nw.Stages(), Terminals: nw.Terminals(),
		Scenario: o.scenario, Replications: st.Replications, Seed: o.seed,
		Injected: st.Injected, Rejected: st.Rejected, Delivered: st.Delivered,
		Dropped: st.Dropped, FaultDropped: st.FaultDropped, Misrouted: st.Misrouted,
		InFlight: st.InFlight, MaxOccupancy: st.MaxOccupancy,
		Throughput:     fromEngineStat(st.Throughput),
		Latency:        fromEngineStat(st.Latency),
		LatencyP50:     fromEngineStat(st.LatencyP50),
		LatencyP95:     fromEngineStat(st.LatencyP95),
		LatencyP99:     fromEngineStat(st.LatencyP99),
		StageOccupancy: st.StageOccupancy,
	}, nil
}

// AnalyticThroughput evaluates Patel's blocking recurrence: the
// expected delivered fraction of an n-stage unbuffered MIN under
// independent uniform traffic at the given offered load. The wave
// model's measured throughput converges to it.
func AnalyticThroughput(stages int, load float64) float64 {
	return sim.AnalyticUniformThroughputLoaded(stages, load)
}
