package min

import "minequiv/internal/sim"

// ScenarioInfo describes one named traffic pattern accepted by
// WithScenario.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// LoadAware scenarios consume the WithLoad value themselves; the
	// rest inject at every input and are thinned to the offered load.
	LoadAware bool `json:"loadAware"`
}

// Scenarios lists the traffic-pattern registry in declaration order.
func Scenarios() []ScenarioInfo {
	scs := sim.Scenarios()
	out := make([]ScenarioInfo, len(scs))
	for i, s := range scs {
		out[i] = ScenarioInfo{Name: s.Name, Description: s.Description, LoadAware: s.LoadAware}
	}
	return out
}

// ScenarioNames lists the registered scenario names in declaration
// order.
func ScenarioNames() []string { return sim.ScenarioNames() }
