package min

import (
	"testing"
)

// FuzzBuilderStageSpecs drives the Builder/FromIndexPerms surface with
// arbitrary stage specs: whatever bytes arrive, construction must
// either fail cleanly or yield a network whose invariants hold (stage
// count, terminal count, PIPID detection, a compilable fabric). CI runs
// this for a short smoke window on every push.
func FuzzBuilderStageSpecs(f *testing.F) {
	f.Add(3, []byte{2, 1, 0, 1, 0, 2})
	f.Add(4, []byte{1, 2, 3, 0, 0, 1, 2, 3, 3, 2, 1, 0})
	f.Add(2, []byte{0, 1})
	f.Add(5, []byte{})
	f.Add(-1, []byte{0})
	f.Add(20, []byte{0, 1, 2})
	f.Fuzz(func(t *testing.T, stages int, raw []byte) {
		if stages > 12 {
			stages %= 13 // keep networks small; size limits are tested directly
		}
		// Slice raw into stages-1 candidate thetas of length `stages`.
		var thetas [][]int
		if stages > 0 {
			need := (stages - 1) * stages
			for len(raw) < need {
				raw = append(raw, byte(len(raw)))
			}
			thetas = make([][]int, stages-1)
			for s := range thetas {
				th := make([]int, stages)
				for j := range th {
					th[j] = int(raw[s*stages+j]) % (stages + 2) // mostly valid, sometimes out of range
				}
				thetas[s] = th
			}
		}
		nw, err := FromIndexPerms("fuzz", stages, thetas)
		if err != nil {
			return // rejection is a fine outcome; panics are not
		}
		if nw.Stages() != stages || nw.Terminals() != 1<<uint(stages) {
			t.Fatalf("accepted network has wrong shape: stages=%d terminals=%d", nw.Stages(), nw.Terminals())
		}
		if !nw.IsPIPID() {
			t.Fatal("FromIndexPerms built a non-PIPID network")
		}
		// The accepted spec must round-trip through the Builder.
		b := NewBuilder(stages)
		for _, th := range thetas {
			b.Stage(IndexBits(th...))
		}
		rebuilt, err := b.Build("fuzz-rebuilt")
		if err != nil {
			t.Fatalf("Builder rejected a spec FromIndexPerms accepted: %v", err)
		}
		if rebuilt.Fingerprint() != nw.Fingerprint() {
			t.Fatal("Builder and FromIndexPerms disagree on the wiring")
		}
		// Every constructible network must characterize and simulate
		// without panicking.
		rep := Check(nw)
		if rep.Banyan {
			if _, err := Route(nw, 0, nw.Terminals()-1); err != nil {
				t.Fatalf("banyan network failed to route: %v", err)
			}
		}
	})
}
