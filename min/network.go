package min

import (
	"fmt"
	"sync"

	"minequiv/internal/ascii"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
	"minequiv/internal/pipid"
	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

// The classical catalog names — the six networks of Wu & Feng that the
// paper's main corollary proves pairwise baseline-equivalent — plus the
// tail-cycle counterexample reachable through TailCycle.
const (
	Baseline        = topology.NameBaseline
	ReverseBaseline = topology.NameReverseBaseline
	Omega           = topology.NameOmega
	Flip            = topology.NameFlip
	IndirectCube    = topology.NameIndirectCube
	ModifiedDM      = topology.NameModifiedDM
)

// MaxStages bounds the stage count of every constructor.
const MaxStages = midigraph.MaxStages

// NetworkInfo describes one catalog entry.
type NetworkInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

var catalogInfo = map[string]string{
	Baseline:        "the Baseline network (recursive half-size definition)",
	ReverseBaseline: "Baseline with all arcs reversed (subshuffle stages)",
	Omega:           "Lawrie's Omega network (perfect shuffle at every stage)",
	Flip:            "Batcher's Flip network from STARAN (inverse shuffle)",
	IndirectCube:    "Pease's indirect binary n-cube (ascending butterflies)",
	ModifiedDM:      "Feng's modified data manipulator (descending butterflies)",
}

// Catalog lists the built-in networks in stable order.
func Catalog() []NetworkInfo {
	names := topology.Names()
	out := make([]NetworkInfo, len(names))
	for i, name := range names {
		out[i] = NetworkInfo{Name: name, Description: catalogInfo[name]}
	}
	return out
}

// CatalogNames lists the built-in network names in stable order.
func CatalogNames() []string { return topology.Names() }

// Network is an n-stage multistage interconnection network on 2^n input
// and 2^n output terminals, with 2x2 switches. The zero value is not
// usable; obtain one from Build, FromLinkPerms, FromIndexPerms,
// TailCycle, or a Builder. A Network is immutable and safe for
// concurrent use; the simulation fabric it lazily compiles is shared.
type Network struct {
	topo topology.Network

	fabricOnce sync.Once
	fabric     *sim.Fabric
	fabricErr  error
}

func newNetwork(t topology.Network) *Network { return &Network{topo: t} }

// Build constructs a catalog network by name with the given stage count
// (stages in [2, MaxStages]; the network has 2^stages terminals).
func Build(name string, stages int) (*Network, error) {
	t, err := topology.Build(name, stages)
	if err != nil {
		return nil, err
	}
	return newNetwork(t), nil
}

// MustBuild is Build that panics on error, for examples and tests.
func MustBuild(name string, stages int) *Network {
	nw, err := Build(name, stages)
	if err != nil {
		panic(err)
	}
	return nw
}

// TailCycle builds the paper's tail-cycle counterexample: a Banyan
// network (full unique-path reachability) that still is NOT
// baseline-equivalent, because the last connection's cycle breaks the
// P(i,n) window family. Requires stages >= 3.
func TailCycle(stages int) (*Network, error) {
	perms, err := randnet.TailCycleLinkPerms(stages)
	if err != nil {
		return nil, err
	}
	g, err := midigraph.FromLinkPerms(stages, perms)
	if err != nil {
		return nil, err
	}
	return newNetwork(topology.Network{Name: "tail-cycle", Graph: g, LinkPerms: perms}), nil
}

// FromLinkPerms builds a network from explicit per-stage link
// permutations: perms[s][x] is the inlink of stage s+1 wired to outlink
// x of stage s. There must be stages-1 of them, each a permutation of
// {0..2^stages-1}. PIPID structure is detected automatically, enabling
// bit-directed routing when present.
func FromLinkPerms(name string, stages int, perms [][]int) (*Network, error) {
	if stages < 2 || stages > MaxStages {
		return nil, fmt.Errorf("min: stage count %d out of range [2,%d]", stages, MaxStages)
	}
	if len(perms) != stages-1 {
		return nil, fmt.Errorf("min: want %d link permutations for %d stages, got %d",
			stages-1, stages, len(perms))
	}
	lps := make([]perm.Perm, len(perms))
	for s, p := range perms {
		lp := make(perm.Perm, len(p))
		for i, v := range p {
			if v < 0 {
				return nil, fmt.Errorf("min: stage %d permutation has negative entry %d", s, v)
			}
			lp[i] = uint64(v)
		}
		if err := lp.Validate(); err != nil {
			return nil, fmt.Errorf("min: stage %d: %w", s, err)
		}
		if lp.N() != 1<<uint(stages) {
			return nil, fmt.Errorf("min: stage %d permutation on %d symbols, want %d",
				s, lp.N(), 1<<uint(stages))
		}
		lps[s] = lp
	}
	t, err := topology.FromLinkPerms(name, stages, lps)
	if err != nil {
		return nil, err
	}
	return newNetwork(t), nil
}

// FromIndexPerms builds a PIPID network from explicit per-stage index
// permutations: thetas[s] maps bit positions of the link label, with
// thetas[s][j] the source position of output bit j. There must be
// stages-1 of them, each a permutation of {0..stages-1}.
func FromIndexPerms(name string, stages int, thetas [][]int) (*Network, error) {
	if stages < 2 || stages > MaxStages {
		return nil, fmt.Errorf("min: stage count %d out of range [2,%d]", stages, MaxStages)
	}
	if len(thetas) != stages-1 {
		return nil, fmt.Errorf("min: want %d index permutations for %d stages, got %d",
			stages-1, stages, len(thetas))
	}
	ips := make([]pipid.IndexPerm, len(thetas))
	for s, th := range thetas {
		ip, err := pipid.New(append([]int(nil), th...))
		if err != nil {
			return nil, fmt.Errorf("min: stage %d: %w", s, err)
		}
		if ip.W() != stages {
			return nil, fmt.Errorf("min: stage %d theta on %d bits, want %d", s, ip.W(), stages)
		}
		ips[s] = ip
	}
	t, err := topology.FromIndexPerms(name, stages, ips)
	if err != nil {
		return nil, err
	}
	return newNetwork(t), nil
}

// Name returns the network's name.
func (nw *Network) Name() string { return nw.topo.Name }

// Stages returns the number of switch stages n.
func (nw *Network) Stages() int { return nw.topo.Graph.Stages() }

// Terminals returns the number of input (= output) terminals, 2^n.
func (nw *Network) Terminals() int { return nw.topo.Graph.Terminals() }

// CellsPerStage returns the number of 2x2 switches per stage, 2^(n-1).
func (nw *Network) CellsPerStage() int { return nw.topo.Graph.CellsPerStage() }

// IsPIPID reports whether every stage is an index-digit permutation, the
// precondition for the paper's §4 bit-directed routing.
func (nw *Network) IsPIPID() bool { return nw.topo.IndexPerms != nil }

// LinkPerms returns a copy of the per-stage link permutations.
func (nw *Network) LinkPerms() [][]int {
	out := make([][]int, len(nw.topo.LinkPerms))
	for s, lp := range nw.topo.LinkPerms {
		row := make([]int, lp.N())
		for i, v := range lp {
			row[i] = int(v)
		}
		out[s] = row
	}
	return out
}

// IndexPerms returns a copy of the per-stage index permutations (thetas)
// and true when the network is PIPID-defined, or nil and false.
func (nw *Network) IndexPerms() ([][]int, bool) {
	if nw.topo.IndexPerms == nil {
		return nil, false
	}
	out := make([][]int, len(nw.topo.IndexPerms))
	for s, ip := range nw.topo.IndexPerms {
		out[s] = append([]int(nil), ip.Theta...)
	}
	return out, true
}

// graph exposes the MI-digraph to the façade's own files.
func (nw *Network) graph() *midigraph.Graph { return nw.topo.Graph }

// Fingerprint returns the network's canonical arc hash: a 64-bit FNV-1a
// digest of the stage count and every stage's ordered child arrays.
// Two networks have the same fingerprint exactly when they have
// identical wiring (same arcs, same (f,g) slot order), regardless of
// how they were constructed — catalog name, link permutations, index
// permutations, or a Builder all hash the arcs they produce. It is a
// structural identity, not an isomorphism invariant; minserve keys its
// response cache on it.
func (nw *Network) Fingerprint() uint64 {
	g := nw.topo.Graph
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	hash := uint64(offset64)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			hash ^= (v >> uint(shift)) & 0xff
			hash *= prime64
		}
	}
	mix(uint64(g.Stages()))
	for s := 0; s < g.Stages()-1; s++ {
		for _, c := range g.ChildSlice(s) {
			mix(uint64(c))
		}
	}
	return hash
}

// compiledFabric lazily compiles the simulation fabric (routing tables)
// once per Network.
func (nw *Network) compiledFabric() (*sim.Fabric, error) {
	nw.fabricOnce.Do(func() {
		nw.fabric, nw.fabricErr = sim.NewFabric(nw.topo.LinkPerms)
	})
	return nw.fabric, nw.fabricErr
}

// DrawOptions controls Draw's text rendering.
type DrawOptions struct {
	Tuples   bool   // print labels as binary tuples (the paper's Fig 2 style)
	OneBased bool   // number stages 1..n as the paper does
	Title    string // optional heading
}

// Draw renders the network stage by stage as plain text: each line shows
// a switch cell and its ordered children in the next stage.
func (nw *Network) Draw(opt DrawOptions) string {
	return ascii.Network(nw.topo.Graph, ascii.Options{
		Tuples: opt.Tuples, OneBased: opt.OneBased, Title: opt.Title,
	})
}
