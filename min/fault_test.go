package min

import (
	"context"
	"reflect"
	"testing"
)

// WithFaults degrades both models deterministically: (seed, plan)
// reproduces the run, fault drops are reported, and delivery falls
// versus the intact fabric.
func TestSimulateWithFaults(t *testing.T) {
	nw := MustBuild(Omega, 5)
	plan := FaultPlan{
		Faults:         []Fault{{Kind: SwitchDead, Stage: 1, Cell: 0}},
		SwitchDeadRate: 0.03,
		LinkDownRate:   0.02,
	}
	opts := []Option{WithSeed(9), WithWaves(120)}
	intact, err := Simulate(context.Background(), nw, opts...)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Simulate(context.Background(), nw, append(opts, WithFaults(plan))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), nw, append(opts, WithFaults(plan), WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("degraded run not reproducible across worker counts:\n%+v\n%+v", a, b)
	}
	if a.FaultDropped == 0 {
		t.Fatal("no fault drops reported")
	}
	if a.Offered != intact.Offered {
		t.Fatalf("fault plan changed offered traffic: %d vs %d", a.Offered, intact.Offered)
	}
	if a.Delivered >= intact.Delivered {
		t.Fatalf("faults did not degrade delivery: %d >= %d", a.Delivered, intact.Delivered)
	}

	bopts := []Option{WithSeed(9), WithCycles(300), WithWarmup(30), WithReplications(4), WithLoad(0.8)}
	bi, err := SimulateBuffered(context.Background(), nw, bopts...)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := SimulateBuffered(context.Background(), nw, append(bopts, WithFaults(plan))...)
	if err != nil {
		t.Fatal(err)
	}
	bf2, err := SimulateBuffered(context.Background(), nw, append(bopts, WithFaults(plan), WithWorkers(3))...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bf, bf2) {
		t.Fatal("degraded buffered run not reproducible across worker counts")
	}
	if bf.FaultDropped == 0 {
		t.Fatal("buffered: no fault drops reported")
	}
	if bf.Delivered >= bi.Delivered {
		t.Fatalf("buffered: faults did not degrade delivery: %d >= %d", bf.Delivered, bi.Delivered)
	}

	// Invalid plans surface as errors.
	if _, err := Simulate(context.Background(), nw,
		WithSeed(1), WithFaults(FaultPlan{Faults: []Fault{{Kind: "melted", Stage: 0}}})); err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	if _, err := SimulateBuffered(context.Background(), nw,
		WithSeed(1), WithFaults(FaultPlan{SwitchDeadRate: 1.5})); err == nil {
		t.Fatal("out-of-range fault rate accepted")
	}
}

// RouteUnderFaults with an empty plan is Route; pinned faults remove
// exactly the paths that used them.
func TestRouteUnderFaults(t *testing.T) {
	nw := MustBuild(Flip, 4)
	for src := 0; src < nw.Terminals(); src += 3 {
		for dst := 0; dst < nw.Terminals(); dst += 5 {
			want, err := Route(nw, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RouteUnderFaults(nw, src, dst, FaultPlan{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("(%d,%d): empty-plan route differs from Route", src, dst)
			}
		}
	}

	// Kill the stage-0 switch serving sources 4 and 5.
	plan := FaultPlan{Faults: []Fault{{Kind: SwitchDead, Stage: 0, Cell: 2}}}
	if _, err := RouteUnderFaults(nw, 4, 0, plan); err == nil {
		t.Fatal("routed through a dead switch")
	}
	if _, err := RouteUnderFaults(nw, 0, 4, plan); err != nil {
		t.Fatalf("unaffected source blocked: %v", err)
	}

	// The tail-cycle network is not PIPID-defined; fault-aware routing
	// must still work through the reachability fallback.
	tc, err := TailCycle(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RouteUnderFaults(tc, 1, 6, FaultPlan{}); err != nil {
		t.Fatalf("tail-cycle fault routing failed: %v", err)
	}

	// Random rates have no meaning for a single route.
	if _, err := RouteUnderFaults(nw, 0, 0, FaultPlan{SwitchDeadRate: 0.5}); err == nil {
		t.Fatal("random rates accepted for routing")
	}
	// Out-of-range terminals and fault coordinates are rejected.
	if _, err := RouteUnderFaults(nw, -1, 0, FaultPlan{}); err == nil {
		t.Fatal("negative src accepted")
	}
	if _, err := RouteUnderFaults(nw, 0, nw.Terminals(), FaultPlan{}); err == nil {
		t.Fatal("out-of-range dst accepted")
	}
	if _, err := RouteUnderFaults(nw, 0, 0, FaultPlan{Faults: []Fault{{Kind: LinkDown, Stage: 0, Link: 99}}}); err == nil {
		t.Fatal("out-of-range fault accepted")
	}
}

// CountAdmissibleUnderFaults reproduces the classical count on the
// intact fabric and degrades monotonically as elements fail.
func TestCountAdmissibleUnderFaults(t *testing.T) {
	nw := MustBuild(Omega, 3)
	intactAdm, total, err := CountAdmissibleUnderFaults(nw, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	wantAdm, wantTotal, err := CountAdmissible(nw)
	if err != nil {
		t.Fatal(err)
	}
	if intactAdm != wantAdm || total != wantTotal {
		t.Fatalf("intact count %d/%d differs from CountAdmissible %d/%d", intactAdm, total, wantAdm, wantTotal)
	}

	// The fragility corollary: a conflict-free full permutation uses
	// every outlink of every stage, so ANY single fault — severed link,
	// dead switch, jammed crossbar — zeroes the admissible count.
	for name, plan := range map[string]FaultPlan{
		"link":  {Faults: []Fault{{Kind: LinkDown, Stage: 1, Link: 2}}},
		"dead":  {Faults: []Fault{{Kind: SwitchDead, Stage: 1, Cell: 1}}},
		"stuck": {Faults: []Fault{{Kind: SwitchStuck1, Stage: 2, Cell: 3}}},
	} {
		adm, _, err := CountAdmissibleUnderFaults(nw, plan)
		if err != nil {
			t.Fatal(err)
		}
		if adm != 0 {
			t.Fatalf("%s fault: admissible=%d, want 0 (full permutations saturate the fabric)", name, adm)
		}
	}
	if intactAdm == 0 {
		t.Fatal("intact count degenerate")
	}
}
