package min

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestCatalogBuild(t *testing.T) {
	infos := Catalog()
	if len(infos) != 6 {
		t.Fatalf("catalog has %d entries, want 6", len(infos))
	}
	for _, info := range infos {
		if info.Description == "" {
			t.Errorf("%s has no description", info.Name)
		}
		nw, err := Build(info.Name, 4)
		if err != nil {
			t.Fatalf("Build(%s): %v", info.Name, err)
		}
		if nw.Name() != info.Name || nw.Stages() != 4 || nw.Terminals() != 16 || nw.CellsPerStage() != 8 {
			t.Errorf("%s: wrong shape %d/%d/%d", info.Name, nw.Stages(), nw.Terminals(), nw.CellsPerStage())
		}
		if !nw.IsPIPID() {
			t.Errorf("%s: catalog network not PIPID", info.Name)
		}
		if rep := Check(nw); !rep.Equivalent {
			t.Errorf("%s: not baseline-equivalent:\n%s", info.Name, rep)
		}
	}
	if _, err := Build("nope", 4); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Build(Omega, 1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestFromPermsRoundTrip(t *testing.T) {
	omega := MustBuild(Omega, 4)

	lp, err := FromLinkPerms("copy", 4, omega.LinkPerms())
	if err != nil {
		t.Fatal(err)
	}
	if !lp.IsPIPID() {
		t.Error("PIPID structure not detected from link perms")
	}
	thetas, ok := omega.IndexPerms()
	if !ok {
		t.Fatal("omega not PIPID")
	}
	ip, err := FromIndexPerms("copy2", 4, thetas)
	if err != nil {
		t.Fatal(err)
	}
	for _, nw := range []*Network{lp, ip} {
		eq, err := Equivalent(nw, omega)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("%s: round trip lost equivalence", nw.Name())
		}
	}
	// Validation errors.
	if _, err := FromLinkPerms("bad", 4, omega.LinkPerms()[:1]); err == nil {
		t.Error("wrong perm count accepted")
	}
	if _, err := FromLinkPerms("bad", 4, [][]int{{0, 0}, {0, 1}, {1, 0}}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := FromIndexPerms("bad", 4, [][]int{{0, 1, 2}, {0, 1, 2}, {0, 1, 2}}); err == nil {
		t.Error("short theta accepted")
	}
}

func TestBuilder(t *testing.T) {
	// Butterfly cascades in any order are baseline-equivalent (the
	// paper's corollary); build one by hand.
	nw, err := NewBuilder(4).
		Stage(Butterfly(2)).
		Stage(Butterfly(1)).
		Stage(Butterfly(3)).
		Build("cascade-213")
	if err != nil {
		t.Fatal(err)
	}
	if rep := Check(nw); !rep.Equivalent {
		t.Fatalf("cascade not equivalent:\n%s", rep)
	}

	// StageAll reconstructs Omega exactly.
	again, err := NewBuilder(5).StageAll(PerfectShuffle()).Build("omega-again")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := again.LinkPerms(), MustBuild(Omega, 5).LinkPerms(); !reflect.DeepEqual(got, want) {
		t.Error("StageAll(PerfectShuffle) differs from catalog Omega")
	}

	// Baseline via inverse subshuffles.
	b := NewBuilder(4)
	for s := 0; s < 3; s++ {
		b.Stage(InverseSubshuffle(4 - s))
	}
	base, err := b.Build("baseline-again")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := base.LinkPerms(), MustBuild(Baseline, 4).LinkPerms(); !reflect.DeepEqual(got, want) {
		t.Error("inverse-subshuffle cascade differs from catalog Baseline")
	}

	// Error paths: sticky and descriptive.
	if _, err := NewBuilder(4).Stage(Butterfly(7)).Stage(Butterfly(1)).Build("x"); err == nil ||
		!strings.Contains(err.Error(), "butterfly") {
		t.Errorf("bad butterfly index: %v", err)
	}
	if _, err := NewBuilder(4).Stage(PerfectShuffle()).Build("x"); err == nil {
		t.Error("missing stages accepted")
	}
	if _, err := NewBuilder(3).StageAll(PerfectShuffle()).Stage(PerfectShuffle()).Build("x"); err == nil {
		t.Error("extra stage accepted")
	}
	if _, err := NewBuilder(1).Build("x"); err == nil {
		t.Error("one-stage builder accepted")
	}
	if _, err := NewBuilder(4).StageAll(IndexBits(1, 0)).Build("x"); err == nil {
		t.Error("wrong-width IndexBits accepted")
	}
	flip, err := NewBuilder(3).StageAll(IndexBits(1, 2, 0)).Build("flip3")
	if err != nil {
		t.Fatal(err)
	}
	if eq, err := Equivalent(flip, MustBuild(Flip, 3)); err != nil || !eq {
		t.Errorf("IndexBits flip not equivalent to catalog Flip: %v %v", eq, err)
	}
}

func TestCheckTailCycle(t *testing.T) {
	tc, err := TailCycle(4)
	if err != nil {
		t.Fatal(err)
	}
	rep := Check(tc)
	if rep.Equivalent {
		t.Fatal("tail-cycle reported equivalent")
	}
	if !rep.Banyan {
		t.Error("tail-cycle is Banyan — the whole point of the counterexample")
	}
	if len(rep.Violations()) == 0 {
		t.Error("no window violations reported")
	}
	if !strings.Contains(rep.String(), "NOT baseline-equivalent") {
		t.Errorf("report text wrong:\n%s", rep)
	}
	if len(CheckAllWindows(tc)) != 10 { // n(n+1)/2 windows for n=4
		t.Errorf("window table has %d entries, want 10", len(CheckAllWindows(tc)))
	}
	// The exact oracle agrees with the characterization.
	eq, err := Equivalent(tc, MustBuild(Baseline, 4))
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("oracle found tail-cycle equivalent to baseline")
	}
	if _, err := TailCycle(2); err == nil {
		t.Error("n=2 tail-cycle accepted")
	}
}

func TestIso(t *testing.T) {
	for _, name := range CatalogNames() {
		nw := MustBuild(name, 4)
		iso, err := Iso(nw)
		if err != nil {
			t.Fatalf("Iso(%s): %v", name, err)
		}
		if err := iso.Verify(nw, MustBuild(Baseline, 4)); err != nil {
			t.Errorf("Iso(%s) does not verify: %v", name, err)
		}
	}
	iso, err := IsoBetween(MustBuild(Omega, 4), MustBuild(Flip, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := iso.Verify(MustBuild(Omega, 4), MustBuild(Flip, 4)); err != nil {
		t.Errorf("IsoBetween does not verify: %v", err)
	}
	tc, _ := TailCycle(4)
	if _, err := Iso(tc); err == nil {
		t.Error("Iso accepted the counterexample")
	}
}

func TestIndependentStages(t *testing.T) {
	ok, err := IndependentStages(MustBuild(Omega, 5))
	if err != nil || !ok {
		t.Errorf("omega stages not independent: %v %v", ok, err)
	}
	tc, _ := TailCycle(4)
	if _, err := IndependentStages(tc); err == nil {
		t.Error("non-PIPID network accepted")
	}
}

func TestRoute(t *testing.T) {
	omega := MustBuild(Omega, 4)
	p, err := Route(omega, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if p.Src != 5 || p.Dst != 12 || len(p.Hops) != 4 {
		t.Fatalf("bad path: %+v", p)
	}
	// Tag positions are a permutation of 0..n-1 for every catalog net.
	for _, name := range CatalogNames() {
		nw := MustBuild(name, 4)
		tags, err := TagPositions(nw)
		if err != nil {
			t.Fatalf("TagPositions(%s): %v", name, err)
		}
		seen := make([]bool, 4)
		for _, p := range tags {
			seen[p] = true
		}
		for b, s := range seen {
			if !s {
				t.Errorf("%s: destination bit %d never consumed (tags %v)", name, b, tags)
			}
		}
		// Every pair routes, and the tag router agrees with what the
		// fabric's reachability-compiled wave model would do: the path
		// must land on dst.
		for src := 0; src < nw.Terminals(); src += 5 {
			for dst := 0; dst < nw.Terminals(); dst += 3 {
				p, err := Route(nw, src, dst)
				if err != nil {
					t.Fatalf("%s: route %d->%d: %v", name, src, dst, err)
				}
				if p.Hops[len(p.Hops)-1].Cell*2+p.Hops[len(p.Hops)-1].OutPort != dst {
					t.Fatalf("%s: route %d->%d lands elsewhere: %+v", name, src, dst, p)
				}
			}
		}
	}
	// The non-PIPID tail-cycle network still routes (Banyan ⇒ unique
	// paths) through the reachability fallback.
	tc, _ := TailCycle(4)
	if _, err := TagPositions(tc); err == nil {
		t.Error("TagPositions accepted non-PIPID network")
	}
	p, err = Route(tc, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if last := p.Hops[len(p.Hops)-1]; last.Cell*2+last.OutPort != 9 {
		t.Fatalf("fallback route lands elsewhere: %+v", p)
	}
	if _, err := Route(omega, -1, 0); err == nil {
		t.Error("negative terminal accepted")
	}
	if _, err := Route(omega, 0, 99); err == nil {
		t.Error("out-of-range terminal accepted")
	}
}

func TestCountAdmissible(t *testing.T) {
	adm, total, err := CountAdmissible(MustBuild(Omega, 3))
	if err != nil {
		t.Fatal(err)
	}
	// N=8: 8! = 40320 total, 2^12 admissible (12 switches).
	if total != 40320 || adm != 4096 {
		t.Fatalf("admissible %d/%d, want 4096/40320", adm, total)
	}
	if _, _, err := CountAdmissible(MustBuild(Omega, 4)); err == nil {
		t.Error("N=16 enumeration accepted")
	}
}

func TestSimulateDeterminism(t *testing.T) {
	nw := MustBuild(Omega, 5)
	ctx := context.Background()
	a, err := Simulate(ctx, nw, WithWaves(60), WithSeed(9), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(ctx, nw, WithWaves(60), WithSeed(9), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("worker count changed results:\n%+v\n%+v", a, b)
	}
	if a.Offered == 0 || a.Delivered == 0 || a.Throughput.Mean <= 0 || a.Throughput.Mean > 1 {
		t.Fatalf("degenerate stats: %+v", a)
	}
	c, err := Simulate(ctx, nw, WithWaves(60), WithSeed(10))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct seeds produced identical stats")
	}
}

func TestSimulateScenariosAndOptions(t *testing.T) {
	nw := MustBuild(Baseline, 4)
	ctx := context.Background()
	for _, sc := range Scenarios() {
		st, err := Simulate(ctx, nw, WithWaves(10), WithScenario(sc.Name))
		if err != nil {
			t.Fatalf("scenario %s: %v", sc.Name, err)
		}
		if st.Scenario != sc.Name {
			t.Errorf("scenario echoed as %q", st.Scenario)
		}
	}
	// Thinning: an explicit load halves the offered traffic of a
	// non-load-aware scenario.
	full, err := Simulate(ctx, nw, WithWaves(50), WithScenario("transpose"))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Simulate(ctx, nw, WithWaves(50), WithScenario("transpose"), WithLoad(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if half.Offered >= full.Offered {
		t.Errorf("WithLoad(0.5) did not thin: %d vs %d offered", half.Offered, full.Offered)
	}
	// Out-of-range loads error in both models instead of silently
	// saturating (load > 1 is a thinning no-op) or starving (load < 0).
	if _, err := Simulate(ctx, nw, WithLoad(1.5)); err == nil {
		t.Error("load 1.5 accepted by Simulate")
	}
	if _, err := SimulateBuffered(ctx, nw, WithLoad(-0.5), WithCycles(10)); err == nil {
		t.Error("load -0.5 accepted by SimulateBuffered")
	}
	// Misapplied options error instead of silently doing nothing.
	if _, err := Simulate(ctx, nw, WithQueue(4)); err == nil {
		t.Error("buffered-only option accepted by Simulate")
	}
	if _, err := SimulateBuffered(ctx, nw, WithWaves(5)); err == nil {
		t.Error("wave-only option accepted by SimulateBuffered")
	}
	if _, err := Simulate(ctx, nw, WithScenario("nope")); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestSimulateBuffered(t *testing.T) {
	nw := MustBuild(Flip, 4)
	ctx := context.Background()
	st, err := SimulateBuffered(ctx, nw,
		WithLoad(0.7), WithQueue(3), WithLanes(2), WithCycles(400), WithWarmup(40),
		WithReplications(3), WithSeed(5), WithArbiter(ArbiterRoundRobin),
		WithLaneSelect(LaneByDst))
	if err != nil {
		t.Fatal(err)
	}
	if st.Replications != 3 || st.Delivered == 0 || st.Injected == 0 {
		t.Fatalf("empty aggregate: %+v", st)
	}
	if st.Latency.Mean < float64(nw.Stages()) {
		t.Errorf("latency %v below pipeline depth", st.Latency.Mean)
	}
	if len(st.StageOccupancy) != nw.Stages() {
		t.Errorf("stage occupancy has %d entries", len(st.StageOccupancy))
	}
	// Determinism across worker counts, buffered flavor.
	b1, err := SimulateBuffered(ctx, nw, WithCycles(200), WithWarmup(20), WithReplications(4), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	b4, err := SimulateBuffered(ctx, nw, WithCycles(200), WithWarmup(20), WithReplications(4), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b4) {
		t.Fatal("buffered results depend on worker count")
	}
	if _, err := SimulateBuffered(ctx, nw, WithQueue(0)); err == nil {
		t.Error("zero queue accepted")
	}
}

func TestSimulateCancellation(t *testing.T) {
	nw := MustBuild(Omega, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, nw, WithWaves(1<<20)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, err := SimulateBuffered(ctx, nw, WithReplications(1<<16), WithCycles(100)); !errors.Is(err, context.Canceled) {
		t.Fatalf("buffered: want context.Canceled, got %v", err)
	}
}

func TestAnalyticThroughput(t *testing.T) {
	nw := MustBuild(Omega, 6)
	st, err := Simulate(context.Background(), nw, WithWaves(400), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	want := AnalyticThroughput(6, 1.0)
	if d := st.Throughput.Mean - want; d > 0.02 || d < -0.02 {
		t.Errorf("measured %v vs analytic %v", st.Throughput.Mean, want)
	}
}

func TestDraw(t *testing.T) {
	out := MustBuild(Omega, 3).Draw(DrawOptions{Title: "omega, n=3", OneBased: true})
	if !strings.Contains(out, "omega, n=3") || !strings.Contains(out, "stage 1 -> 2:") {
		t.Errorf("draw output wrong:\n%s", out)
	}
	if !strings.Contains(MustBuild(Baseline, 3).Draw(DrawOptions{Tuples: true}), "(0,0)") {
		t.Error("tuple rendering missing")
	}
}

func TestFingerprint(t *testing.T) {
	omega := MustBuild(Omega, 5)
	if omega.Fingerprint() != MustBuild(Omega, 5).Fingerprint() {
		t.Error("identical constructions hash differently")
	}
	// Same wiring from a different construction path must collide.
	viaPerms, err := FromLinkPerms("custom", 5, omega.LinkPerms())
	if err != nil {
		t.Fatal(err)
	}
	if viaPerms.Fingerprint() != omega.Fingerprint() {
		t.Error("identical wiring from link perms hashes differently")
	}
	// Different wiring (even isomorphic wiring) must not, in practice.
	seen := map[uint64]string{omega.Fingerprint(): Omega}
	for _, name := range []string{Baseline, ReverseBaseline, Flip, IndirectCube, ModifiedDM} {
		fp := MustBuild(name, 5).Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s and %s share fingerprint %x", name, prev, fp)
		}
		seen[fp] = name
	}
	if MustBuild(Omega, 4).Fingerprint() == omega.Fingerprint() {
		t.Error("different sizes share a fingerprint")
	}
}

func TestEquivalentMatrix(t *testing.T) {
	var nets []*Network
	for _, name := range CatalogNames() {
		nets = append(nets, MustBuild(name, 5))
	}
	tail, err := TailCycle(5)
	if err != nil {
		t.Fatal(err)
	}
	nets = append(nets, tail)
	for _, workers := range []int{1, 4, 0} {
		got, err := EquivalentMatrix(nets, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range nets {
			for j := range nets {
				pairWant, err := Equivalent(nets[i], nets[j])
				if err != nil {
					t.Fatal(err)
				}
				if i == j {
					pairWant = true
				}
				if got[i][j] != pairWant {
					t.Errorf("workers=%d: matrix[%d][%d]=%v, want %v", workers, i, j, got[i][j], pairWant)
				}
			}
		}
	}
}
