package min

import (
	"fmt"

	"minequiv/internal/conn"
	"minequiv/internal/equiv"
	"minequiv/internal/midigraph"
	"minequiv/internal/perm"
)

// WindowCheck reports one P(i,j) window property: the window spanning
// the paper's 1-based stages i..j must have exactly 2^(n-1-(j-i))
// connected components.
type WindowCheck struct {
	I          int  `json:"i"` // 1-based first stage of the window
	J          int  `json:"j"` // 1-based last stage of the window
	Components int  `json:"components"`
	Expected   int  `json:"expected"`
	OK         bool `json:"ok"`
}

func (w WindowCheck) String() string {
	status := "ok"
	if !w.OK {
		status = "VIOLATED"
	}
	return fmt.Sprintf("P(%d,%d): components=%d expected=%d %s", w.I, w.J, w.Components, w.Expected, status)
}

// Report is the structured outcome of checking the paper's
// characterization on one network: the network is baseline-equivalent
// iff it is Banyan and every prefix window P(1,j) and suffix window
// P(i,n) holds.
type Report struct {
	Network    string `json:"network"`
	Stages     int    `json:"stages"`
	Equivalent bool   `json:"equivalent"`
	Banyan     bool   `json:"banyan"`
	// BanyanViolation describes the witness when Banyan is false.
	BanyanViolation string        `json:"banyanViolation,omitempty"`
	Prefix          []WindowCheck `json:"prefix"` // the P(1,*) family
	Suffix          []WindowCheck `json:"suffix"` // the P(*,n) family
}

// Violations lists every failed window in prefix-then-suffix order.
func (r Report) Violations() []WindowCheck {
	var out []WindowCheck
	for _, w := range r.Prefix {
		if !w.OK {
			out = append(out, w)
		}
	}
	for _, w := range r.Suffix {
		if !w.OK {
			out = append(out, w)
		}
	}
	return out
}

// String renders a human-readable summary with every violated condition.
func (r Report) String() string {
	s := fmt.Sprintf("characterization check (%s, n=%d): ", r.Network, r.Stages)
	if r.Equivalent {
		s += "baseline-equivalent\n"
	} else {
		s += "NOT baseline-equivalent\n"
	}
	if r.Banyan {
		s += "  banyan: ok\n"
	} else {
		s += fmt.Sprintf("  banyan: violated (%s)\n", r.BanyanViolation)
	}
	for _, w := range r.Violations() {
		s += "  " + w.String() + "\n"
	}
	return s
}

func windowChecks(rs []midigraph.WindowResult) []WindowCheck {
	out := make([]WindowCheck, len(rs))
	for i, w := range rs {
		out[i] = WindowCheck{I: w.I, J: w.J, Components: w.Got, Expected: w.Expected, OK: w.OK()}
	}
	return out
}

// Check evaluates the paper's characterization theorem — the Banyan
// property plus the window families P(1,*) and P(*,n) — and returns the
// structured report.
func Check(nw *Network) Report {
	rep := equiv.Check(nw.graph())
	out := Report{
		Network:    nw.Name(),
		Stages:     rep.Stages,
		Equivalent: rep.Equivalent(),
		Banyan:     rep.Banyan,
		Prefix:     windowChecks(rep.Prefix),
		Suffix:     windowChecks(rep.Suffix),
	}
	if rep.BanyanViolation != nil {
		out.BanyanViolation = rep.BanyanViolation.Error()
	}
	return out
}

// IsBaselineEquivalent is the headline predicate of the paper.
func IsBaselineEquivalent(nw *Network) bool { return Check(nw).Equivalent }

// CheckAllWindows evaluates every P(i,j) window, 1 <= i <= j <= n. The
// theorem only needs the prefix and suffix families Check reports; the
// full table is what the counterexample analysis inspects.
func CheckAllWindows(nw *Network) []WindowCheck {
	return windowChecks(nw.graph().CheckAllWindows())
}

// Isomorphism is a stage-respecting node bijection between two networks
// with the same stage count: Maps[s][x] is the image of the stage-s
// switch cell x.
type Isomorphism struct {
	Maps [][]int `json:"maps"`
}

func fromInternalIso(iso equiv.Isomorphism) Isomorphism {
	maps := make([][]int, len(iso.Maps))
	for s, m := range iso.Maps {
		row := make([]int, m.N())
		for i, v := range m {
			row[i] = int(v)
		}
		maps[s] = row
	}
	return Isomorphism{Maps: maps}
}

// Verify checks that iso is a genuine isomorphism from a onto b: every
// per-stage map a bijection, every arc of a carried to an arc of b.
func (iso Isomorphism) Verify(a, b *Network) error {
	maps := make([]perm.Perm, len(iso.Maps))
	for s, m := range iso.Maps {
		row := make(perm.Perm, len(m))
		for i, v := range m {
			if v < 0 {
				return fmt.Errorf("min: stage %d map has negative entry %d", s, v)
			}
			row[i] = uint64(v)
		}
		maps[s] = row
	}
	return equiv.Isomorphism{Maps: maps}.Verify(a.graph(), b.graph())
}

// Iso constructs the explicit isomorphism from nw onto the Baseline
// network of the same size that the characterization theorem promises.
// It fails with a descriptive error when nw is not baseline-equivalent.
func Iso(nw *Network) (Isomorphism, error) {
	iso, err := equiv.IsoToBaseline(nw.graph())
	if err != nil {
		return Isomorphism{}, err
	}
	return fromInternalIso(iso), nil
}

// IsoBetween constructs an isomorphism from a onto b. Both networks must
// be baseline-equivalent (the maps are composed through Baseline).
func IsoBetween(a, b *Network) (Isomorphism, error) {
	iso, err := equiv.IsoBetween(a.graph(), b.graph())
	if err != nil {
		return Isomorphism{}, err
	}
	return fromInternalIso(iso), nil
}

// Equivalent decides topological equivalence of two same-size networks.
// When both satisfy the characterization they are equivalent; when
// exactly one does they are not; when neither does, an exact
// backtracking search settles it for small networks (up to 6 stages)
// and an error is returned beyond that bound.
func Equivalent(a, b *Network) (bool, error) {
	return equiv.AreEquivalent(a.graph(), b.graph())
}

// EquivalentMatrix computes the full pairwise equivalence matrix of the
// given networks, sharding the per-network characterizations and the
// per-pair decisions across workers (<= 0 means GOMAXPROCS). Each
// network is characterized exactly once — not once per pair — and the
// result is deterministic for any worker count. The semantics per pair
// are those of Equivalent; the diagonal is true by reflexivity.
func EquivalentMatrix(nets []*Network, workers int) ([][]bool, error) {
	graphs := make([]*midigraph.Graph, len(nets))
	for i, nw := range nets {
		graphs[i] = nw.graph()
	}
	return equiv.PairwiseEquivalent(graphs, workers)
}

// IndependentStages reports whether every stage of a PIPID-defined
// network induces an independent connection — the §4 theorem's route
// from PIPID structure to baseline-equivalence. It errors on
// non-PIPID networks, where the notion does not apply stage-wise.
func IndependentStages(nw *Network) (bool, error) {
	if nw.topo.IndexPerms == nil {
		return false, fmt.Errorf("min: %s is not PIPID-defined", nw.Name())
	}
	for _, theta := range nw.topo.IndexPerms {
		if !conn.FromIndexPerm(theta).IsIndependent() {
			return false, nil
		}
	}
	return true, nil
}
