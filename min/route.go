package min

import (
	"fmt"

	"minequiv/internal/route"
)

// Hop records one stage of a routed path.
type Hop struct {
	Stage   int `json:"stage"`   // 0-based stage index
	Cell    int `json:"cell"`    // switch cell at this stage
	InPort  int `json:"inPort"`  // port the packet arrived on (0/1)
	OutPort int `json:"outPort"` // port chosen to leave on (0/1)
}

// Path is a full route from an input terminal to an output terminal.
type Path struct {
	Src  int   `json:"src"`
	Dst  int   `json:"dst"`
	Hops []Hop `json:"hops"`
}

func fromInternalPath(p route.Path) Path {
	out := Path{Src: int(p.Src), Dst: int(p.Dst), Hops: make([]Hop, len(p.Steps))}
	for i, st := range p.Steps {
		out.Hops[i] = Hop{Stage: st.Stage, Cell: int(st.Cell), InPort: int(st.InPort), OutPort: int(st.OutPort)}
	}
	return out
}

// Route computes the path from input terminal src to output terminal
// dst. PIPID-defined networks use the paper's §4 bit-directed
// destination tags; any other network falls back to a reachability
// router, which finds the unique path on Banyan networks and fails when
// no path exists.
func Route(nw *Network, src, dst int) (Path, error) {
	if src < 0 || dst < 0 {
		return Path{}, fmt.Errorf("min: negative terminal (src=%d dst=%d)", src, dst)
	}
	if nw.IsPIPID() {
		r, err := route.NewRouter(nw.topo.IndexPerms)
		if err == nil {
			p, err := r.Route(uint64(src), uint64(dst))
			if err != nil {
				return Path{}, err
			}
			return fromInternalPath(p), nil
		}
		// Degenerate PIPID stages (tag overwritten en route) still route
		// via reachability below.
	}
	r, err := route.NewDPRouter(nw.topo.LinkPerms)
	if err != nil {
		return Path{}, err
	}
	p, err := r.Route(uint64(src), uint64(dst))
	if err != nil {
		return Path{}, err
	}
	return fromInternalPath(p), nil
}

// TagPositions returns the destination-tag schedule of a PIPID network:
// the switch at stage s reads destination bit TagPositions[s]. This is
// the "very simple bit directed routing" the paper credits PIPID
// networks with; it errors for non-PIPID or degenerate networks.
func TagPositions(nw *Network) ([]int, error) {
	if !nw.IsPIPID() {
		return nil, fmt.Errorf("min: %s is not PIPID-defined", nw.Name())
	}
	r, err := route.NewRouter(nw.topo.IndexPerms)
	if err != nil {
		return nil, err
	}
	return r.TagPositions(), nil
}

// CountAdmissible enumerates all N! full permutations of the terminals
// (practical only for N <= 8, i.e. 3 stages) and counts those the
// network can route without any switch conflict. A Banyan network
// realizes exactly 2^(switch count) of them.
func CountAdmissible(nw *Network) (admissible, total uint64, err error) {
	if !nw.IsPIPID() {
		return 0, 0, fmt.Errorf("min: %s is not PIPID-defined", nw.Name())
	}
	r, err := route.NewRouter(nw.topo.IndexPerms)
	if err != nil {
		return 0, 0, err
	}
	return r.CountAdmissible()
}
