package min

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// TestWithKernel: kernel selection is a pure performance knob — every
// kernel produces the identical WaveStats — and misuse fails loudly.
func TestWithKernel(t *testing.T) {
	nw := MustBuild(Omega, 5)
	ctx := context.Background()
	base, err := Simulate(ctx, nw, WithWaves(130), WithSeed(3), WithKernel(KernelScalar))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []Kernel{KernelAuto, KernelBit} {
		got, err := Simulate(ctx, nw, WithWaves(130), WithSeed(3), WithKernel(k))
		if err != nil {
			t.Fatalf("kernel %q: %v", k, err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("kernel %q changed results:\n%+v\n%+v", k, got, base)
		}
	}
	if _, err := Simulate(ctx, nw, WithKernel("simd")); err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("unknown kernel: err = %v", err)
	}
	if _, err := SimulateBuffered(ctx, nw, WithKernel(KernelScalar)); err == nil || !strings.Contains(err.Error(), "WithKernel") {
		t.Fatalf("WithKernel on the buffered model: err = %v", err)
	}
}
