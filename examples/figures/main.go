// Figures: redraw the paper's figures from the public API — the
// fastest way to see what the paper is about. Figure 1 is the Baseline
// network, Figure 2 its binary-tuple labeling, Figure 3 the six
// classical networks side by side (drawn here for n=3), and the closing
// figure is the tail-cycle counterexample with its violated windows.
package main

import (
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	// Fig 1-2: the Baseline network, plain and tuple-labeled.
	base := min.MustBuild(min.Baseline, 4)
	fmt.Print(base.Draw(min.DrawOptions{Title: "Fig 1: baseline, n=4", OneBased: true}))
	fmt.Println()
	fmt.Print(base.Draw(min.DrawOptions{Title: "Fig 2: baseline, binary tuples", Tuples: true, OneBased: true}))

	// Fig 3: the six classical networks the main corollary equates.
	for _, info := range min.Catalog() {
		nw := min.MustBuild(info.Name, 3)
		fmt.Println()
		fmt.Print(nw.Draw(min.DrawOptions{
			Title: fmt.Sprintf("Fig 3: %s, n=3 — %s", info.Name, info.Description), OneBased: true}))
	}

	// The counterexample: Banyan but not equivalent, with the window
	// table that proves it.
	tc, err := min.TailCycle(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(tc.Draw(min.DrawOptions{Title: "tail-cycle counterexample, n=4", OneBased: true}))
	fmt.Println()
	for _, wc := range min.CheckAllWindows(tc) {
		fmt.Printf("  %s\n", wc)
	}
	fmt.Println()
	fmt.Print(min.Check(tc))
}
