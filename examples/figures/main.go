// Figures: regenerate the paper's five figures directly from the public
// experiment harness — the fastest way to see what the paper is about.
package main

import (
	"log"
	"os"

	"minequiv/internal/experiments"
)

func main() {
	for _, id := range []string{"F1", "F2", "F3", "F4", "F5"} {
		e, ok := experiments.ByID(id)
		if !ok {
			log.Fatalf("experiment %s missing", id)
		}
		if err := experiments.RunOne(os.Stdout, e); err != nil {
			log.Fatal(err)
		}
	}
}
