// Service: consume the minserve HTTP API as a client. The example
// embeds the real handler in an in-process test server, then talks to
// it over actual HTTP — the same requests work against a deployed
// `minserve` binary (swap base for its address).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"minequiv/minserve"
)

func main() {
	srv := httptest.NewServer(minserve.NewHandler(minserve.Config{}))
	defer srv.Close()
	base := srv.URL

	// 1. Liveness first: version, uptime and a cache snapshot — what a
	// load balancer or operator polls.
	var health struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	getJSON(base+"/v1/healthz", &health)
	fmt.Printf("healthz: %s (version %s)\n\n", health.Status, health.Version)

	// 2. Discover the catalog and the traffic scenarios.
	var inventory struct {
		Networks []struct {
			Name        string `json:"name"`
			Description string `json:"description"`
		} `json:"networks"`
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
	}
	getJSON(base+"/v1/networks", &inventory)
	fmt.Println("networks served:")
	for _, nw := range inventory.Networks {
		fmt.Printf("  %-28s %s\n", nw.Name, nw.Description)
	}
	fmt.Printf("scenarios: %d available\n\n", len(inventory.Scenarios))

	// 3. Check the characterization of a custom butterfly cascade sent
	// as explicit index permutations.
	var check struct {
		Report struct {
			Equivalent bool `json:"equivalent"`
			Banyan     bool `json:"banyan"`
		} `json:"report"`
	}
	postJSON(base+"/v1/check",
		`{"network":"my-cascade","stages":3,"indexPerms":[[2,1,0],[1,0,2]]}`, &check)
	fmt.Printf("custom cascade: banyan=%v baseline-equivalent=%v\n\n",
		check.Report.Banyan, check.Report.Equivalent)

	// 4. Route a packet and print the tag schedule.
	var route struct {
		Path struct {
			Hops []struct {
				Stage   int `json:"stage"`
				Cell    int `json:"cell"`
				OutPort int `json:"outPort"`
			} `json:"hops"`
		} `json:"path"`
		TagPositions []int `json:"tagPositions"`
	}
	postJSON(base+"/v1/route", `{"network":"omega","stages":4,"src":5,"dst":12}`, &route)
	fmt.Printf("omega 5 -> 12 (tags %v):\n", route.TagPositions)
	for _, h := range route.Path.Hops {
		fmt.Printf("  stage %d: cell %2d, out port %d\n", h.Stage+1, h.Cell, h.OutPort)
	}
	fmt.Println()

	// 5. Run a seeded simulation; the same request always returns the
	// same bytes, so results are cacheable and comparable.
	var sim struct {
		Wave struct {
			FaultDropped int `json:"faultDropped"`
			Throughput   struct {
				Mean float64 `json:"mean"`
				CI95 float64 `json:"ci95"`
			} `json:"throughput"`
		} `json:"wave"`
	}
	req := `{"network":"omega","stages":6,"waves":400,"seed":42,"scenario":"uniform"}`
	postJSON(base+"/v1/simulate", req, &sim)
	fmt.Printf("omega n=6 uniform, 400 waves (seed 42): throughput %.4f ± %.4f\n",
		sim.Wave.Throughput.Mean, sim.Wave.Throughput.CI95)

	// 6. The same run on a degraded fabric: a faults object injects
	// random dead switches per trial — still reproducible from the body.
	reqFaulty := `{"network":"omega","stages":6,"waves":400,"seed":42,"scenario":"uniform",` +
		`"faults":{"switchDeadRate":0.03}}`
	postJSON(base+"/v1/simulate", reqFaulty, &sim)
	fmt.Printf("  ... with 3%% dead switches: throughput %.4f ± %.4f (%d fault kills)\n",
		sim.Wave.Throughput.Mean, sim.Wave.Throughput.CI95, sim.Wave.FaultDropped)
	fmt.Println()

	// 7. Check responses are cached by topology: repeating a request is
	// served from the LRU (byte-identical to the cold run, X-Cache: HIT)
	// and /v1/healthz carries the counters.
	checkBody := `{"network":"baseline","stages":5}`
	cold, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(checkBody))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, cold.Body)
	cold.Body.Close()
	warm, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(checkBody))
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()
	var health2 struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
		} `json:"cache"`
	}
	getJSON(base+"/v1/healthz", &health2)
	fmt.Printf("check twice: X-Cache %s then %s; cache counters hits=%d misses=%d\n\n",
		cold.Header.Get("X-Cache"), warm.Header.Get("X-Cache"),
		health2.Cache.Hits, health2.Cache.Misses)

	// 8. Batch: N heterogeneous sub-requests in one round trip, answered
	// positionally with per-item cache attribution. Each "body" is
	// byte-identical to what the single endpoint would have returned.
	var batch struct {
		Responses []struct {
			Op     string          `json:"op"`
			Status int             `json:"status"`
			Cache  string          `json:"cache"`
			Body   json.RawMessage `json:"body"`
		} `json:"responses"`
	}
	postJSON(base+"/v1/batch", `{"requests":[`+
		`{"op":"check","request":{"network":"baseline","stages":5}},`+
		`{"op":"route","request":{"network":"omega","stages":4,"src":1,"dst":9}},`+
		`{"op":"check","request":{"network":"nope","stages":4}}]}`, &batch)
	fmt.Println("batch of 3:")
	for i, item := range batch.Responses {
		attr := ""
		if item.Cache != "" {
			attr = " cache=" + item.Cache
		}
		fmt.Printf("  [%d] %-5s status=%d%s (%d body bytes)\n",
			i, item.Op, item.Status, attr, len(item.Body))
	}
	fmt.Println()

	// 9. Errors carry stable machine-readable codes — the third batch
	// item above failed positionally; a direct call shows the envelope.
	resp, err := http.Post(base+"/v1/check", "application/json",
		strings.NewReader(`{"network":"nope","stages":4}`))
	if err != nil {
		log.Fatal(err)
	}
	var werr struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	_ = json.Unmarshal(raw, &werr)
	fmt.Printf("error envelope: HTTP %d code=%s (%s)\n\n",
		resp.StatusCode, werr.Error.Code, werr.Error.Message)

	// 10. The serving limits are discoverable, and /metrics exposes the
	// whole serving plane as Prometheus text.
	var limits struct {
		MaxBatch      int `json:"maxBatch"`
		MaxConcurrent int `json:"maxConcurrent"`
		MaxQueueDepth int `json:"maxQueueDepth"`
	}
	getJSON(base+"/v1/limits", &limits)
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	mtext, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	families := 0
	for _, line := range strings.Split(string(mtext), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}
	fmt.Printf("limits: maxBatch=%d maxConcurrent=%d maxQueueDepth=%d; /metrics serves %d families\n",
		limits.MaxBatch, limits.MaxConcurrent, limits.MaxQueueDepth, families)
}

func getJSON(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	decodeJSON(resp, v)
}

func postJSON(url, body string, v any) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	decodeJSON(resp, v)
}

func decodeJSON(resp *http.Response, v any) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, v); err != nil {
		log.Fatalf("%v in %s", err, raw)
	}
}
