// Quickstart: build a network, check the paper's characterization, and
// get an explicit isomorphism onto the Baseline network — all through
// the public min API.
package main

import (
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	// Build the Omega network with 4 stages (16 inputs).
	omega := min.MustBuild(min.Omega, 4)
	fmt.Printf("built %s: %d stages, %d cells per stage, %d terminals\n",
		omega.Name(), omega.Stages(), omega.CellsPerStage(), omega.Terminals())

	// The paper's characterization: Banyan + P(1,*) + P(*,n).
	report := min.Check(omega)
	fmt.Print(report)

	// Theorem: the characterization implies an isomorphism onto the
	// Baseline network; the library constructs it explicitly.
	iso, err := min.Iso(omega)
	if err != nil {
		log.Fatal(err)
	}
	baseline := min.MustBuild(min.Baseline, 4)
	if err := iso.Verify(omega, baseline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("explicit isomorphism omega -> baseline, per-stage node maps:")
	for s, m := range iso.Maps {
		fmt.Printf("  stage %d: %v\n", s+1, m)
	}
}
