// Quickstart: build a network, check the paper's characterization, and
// get an explicit isomorphism onto the Baseline network.
package main

import (
	"fmt"
	"log"

	"minequiv/internal/equiv"
	"minequiv/internal/topology"
)

func main() {
	// Build the Omega network with 4 stages (16 inputs).
	omega := topology.MustBuild(topology.NameOmega, 4)
	fmt.Printf("built %s: %d stages, %d cells per stage, %d terminals\n",
		omega.Name, omega.Graph.Stages(), omega.Graph.CellsPerStage(), omega.Graph.Terminals())

	// The paper's characterization: Banyan + P(1,*) + P(*,n).
	report := equiv.Check(omega.Graph)
	fmt.Print(report)

	// Theorem: the characterization implies an isomorphism onto the
	// Baseline network; the library constructs it explicitly.
	iso, err := equiv.IsoToBaseline(omega.Graph)
	if err != nil {
		log.Fatal(err)
	}
	baseline := topology.Baseline(4)
	if err := iso.Verify(omega.Graph, baseline); err != nil {
		log.Fatal(err)
	}
	fmt.Println("explicit isomorphism omega -> baseline, per-stage node maps:")
	for s, m := range iso.Maps {
		fmt.Printf("  stage %d: %v\n", s+1, []uint64(m))
	}
}
