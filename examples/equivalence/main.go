// Equivalence: reproduce the paper's main corollary interactively — the
// six classical networks (Omega, Flip, Indirect Binary Cube, Modified
// Data Manipulator, Baseline, Reverse Baseline) are pairwise
// topologically equivalent, and the reason is that their PIPID stages
// induce independent connections.
package main

import (
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	const n = 5
	var nets []*min.Network
	for _, name := range min.CatalogNames() {
		nets = append(nets, min.MustBuild(name, n))
	}

	// Step 1: every stage of every network is an independent connection
	// (the §4 theorem — PIPID implies independence).
	fmt.Printf("stage-by-stage independence (n=%d):\n", n)
	for _, nw := range nets {
		indep, err := min.IndependentStages(nw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s independent stages: %v\n", nw.Name(), indep)
	}

	// Step 2: therefore (Theorem 3) all are isomorphic to Baseline, and
	// hence to each other. Verify each pair explicitly.
	fmt.Println("\npairwise verified isomorphisms:")
	for i := range nets {
		for j := i + 1; j < len(nets); j++ {
			iso, err := min.IsoBetween(nets[i], nets[j])
			if err != nil {
				log.Fatalf("%s ~ %s: %v", nets[i].Name(), nets[j].Name(), err)
			}
			if err := iso.Verify(nets[i], nets[j]); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-28s ~ %s\n", nets[i].Name(), nets[j].Name())
		}
	}
	fmt.Println("\nall 15 pairs equivalent, as the paper proves.")
}
