// Routing: the "very simple bit directed routing" of §4. Each stage of a
// PIPID network consumes one fixed bit of the destination address; this
// example prints the tag schedule of each classical network and walks a
// packet through the Omega network.
package main

import (
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	const n = 4
	fmt.Printf("destination-tag schedules (n=%d, N=%d):\n", n, 1<<n)
	for _, name := range min.CatalogNames() {
		nw := min.MustBuild(name, n)
		tags, err := min.TagPositions(nw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s stage s reads destination bit %v\n", name, tags)
	}

	// Route a packet through Omega from terminal 5 to terminal 12.
	omega := min.MustBuild(min.Omega, n)
	src, dst := 5, 12
	p, err := min.Route(omega, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nomega: packet %d -> %d (dst = 0b%04b):\n", src, dst, dst)
	for _, h := range p.Hops {
		fmt.Printf("  stage %d: cell %2d, arrive port %d, leave port %d\n",
			h.Stage+1, h.Cell, h.InPort, h.OutPort)
	}

	// Blocking: unique paths mean some permutations cannot be routed
	// simultaneously. Count them exhaustively for N=8.
	omega3 := min.MustBuild(min.Omega, 3)
	adm, total, err := min.CountAdmissible(omega3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nomega N=8: %d of %d permutations admissible (= 2^12, one per switch setting)\n",
		adm, total)
}
