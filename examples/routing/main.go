// Routing: the "very simple bit directed routing" of §4. Each stage of a
// PIPID network consumes one fixed bit of the destination address; this
// example prints the tag schedule of each classical network and walks a
// packet through the Omega network.
package main

import (
	"fmt"
	"log"

	"minequiv/internal/route"
	"minequiv/internal/topology"
)

func main() {
	const n = 4
	fmt.Printf("destination-tag schedules (n=%d, N=%d):\n", n, 1<<n)
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		r, err := route.NewRouter(nw.IndexPerms)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s stage s reads destination bit %v\n", name, r.TagPositions())
	}

	// Route a packet through Omega from terminal 5 to terminal 12.
	omega := topology.MustBuild(topology.NameOmega, n)
	r, err := route.NewRouter(omega.IndexPerms)
	if err != nil {
		log.Fatal(err)
	}
	src, dst := uint64(5), uint64(12)
	p, err := r.Route(src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nomega: packet %d -> %d (dst = 0b%04b):\n", src, dst, dst)
	for _, st := range p.Steps {
		fmt.Printf("  stage %d: cell %2d, arrive port %d, leave port %d\n",
			st.Stage+1, st.Cell, st.InPort, st.OutPort)
	}

	// Blocking: unique paths mean some permutations cannot be routed
	// simultaneously. Count them exhaustively for N=8.
	omega3 := topology.MustBuild(topology.NameOmega, 3)
	r3, err := route.NewRouter(omega3.IndexPerms)
	if err != nil {
		log.Fatal(err)
	}
	adm, total, err := r3.CountAdmissible()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nomega N=8: %d of %d permutations admissible (= 2^12, one per switch setting)\n",
		adm, total)
}
