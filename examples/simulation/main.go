// Simulation: the systems-level meaning of topological equivalence. The
// six classical networks, being isomorphic, are statistically identical
// under uniform traffic; the non-equivalent tail-cycle Banyan is a
// different machine.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func main() {
	const n = 6
	const waves = 400

	fmt.Printf("uniform-traffic throughput, n=%d (N=%d), %d waves:\n", n, 1<<n, waves)
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		fabric, err := sim.NewFabric(nw.LinkPerms)
		if err != nil {
			log.Fatal(err)
		}
		th, err := fabric.Throughput(sim.Uniform(), waves, rand.New(rand.NewSource(7)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %.4f\n", name, th)
	}

	perms, err := randnet.TailCycleLinkPerms(n)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := sim.NewFabric(perms)
	if err != nil {
		log.Fatal(err)
	}
	th, err := fabric.Throughput(sim.Uniform(), waves, rand.New(rand.NewSource(7)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %.4f   (Banyan but NOT baseline-equivalent)\n", "tail-cycle", th)

	// Buffered model: latency under increasing load on the Baseline.
	fmt.Printf("\nbuffered baseline n=%d: load sweep (queue 4, 3000 cycles):\n", n)
	base, err := sim.NewFabric(topology.MustBuild(topology.NameBaseline, n).LinkPerms)
	if err != nil {
		log.Fatal(err)
	}
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		res, err := base.RunBuffered(sim.BufferedConfig{
			Load: load, Queue: 4, Cycles: 3000, Warmup: 300,
		}, rand.New(rand.NewSource(11)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load %.1f: throughput %.4f, mean latency %6.2f cycles\n",
			load, res.Throughput, res.MeanLatency)
	}
}
