// Simulation: the systems-level meaning of topological equivalence. The
// six classical networks, being isomorphic, are statistically identical
// under uniform traffic; the non-equivalent tail-cycle Banyan is a
// different machine. All runs go through the parallel trial engine:
// waves are sharded across GOMAXPROCS workers and every wave has its
// own deterministic rng stream, so the numbers printed here do not
// depend on core count.
package main

import (
	"fmt"
	"log"

	"minequiv/internal/engine"
	"minequiv/internal/randnet"
	"minequiv/internal/sim"
	"minequiv/internal/topology"
)

func main() {
	const n = 6
	const waves = 400
	cfg := engine.Config{Seed: 7}

	fmt.Printf("uniform-traffic throughput, n=%d (N=%d), %d waves (mean ± 95%% CI):\n", n, 1<<n, waves)
	for _, name := range topology.Names() {
		nw := topology.MustBuild(name, n)
		fabric, err := sim.NewFabric(nw.LinkPerms)
		if err != nil {
			log.Fatal(err)
		}
		st, err := engine.RunWaves(fabric, sim.Uniform(), waves, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %.4f ± %.4f\n", name, st.Throughput.Mean, st.Throughput.CI95())
	}

	perms, err := randnet.TailCycleLinkPerms(n)
	if err != nil {
		log.Fatal(err)
	}
	fabric, err := sim.NewFabric(perms)
	if err != nil {
		log.Fatal(err)
	}
	st, err := engine.RunWaves(fabric, sim.Uniform(), waves, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %.4f ± %.4f   (Banyan but NOT baseline-equivalent)\n",
		"tail-cycle", st.Throughput.Mean, st.Throughput.CI95())

	// The named scenario catalog on one fabric: how each adversarial
	// pattern stresses the same hardware.
	base, err := sim.NewFabric(topology.MustBuild(topology.NameBaseline, n).LinkPerms)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline n=%d across the scenario catalog (%d waves each):\n", n, waves)
	for _, sc := range sim.Scenarios() {
		st, err := engine.RunWaves(base, sc.New(sim.DefaultScenarioParams()), waves, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.4f ± %.4f\n", sc.Name, st.Throughput.Mean, st.Throughput.CI95())
	}

	// Buffered model: latency under increasing load, replicated runs.
	fmt.Printf("\nbuffered baseline n=%d: load sweep (queue 4, 3000 cycles, 4 reps):\n", n)
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		st, err := engine.RunBuffered(base, sim.BufferedConfig{
			Load: load, Queue: 4, Cycles: 3000, Warmup: 300,
		}, 4, engine.Config{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load %.1f: throughput %.4f ± %.4f, latency %6.2f mean / %3.0f p99 cycles\n",
			load, st.Throughput.Mean, st.Throughput.CI95(), st.Latency.Mean, st.LatencyP99.Mean)
	}

	// Multi-lane storage: at saturation, splitting the same buffer
	// budget into independent lanes bypasses head-of-line blocking.
	fmt.Printf("\nbuffered baseline n=%d at load 1.0, lanes x queue = 8 fixed:\n", n)
	for _, v := range []struct{ lanes, queue int }{{1, 8}, {2, 4}, {4, 2}} {
		st, err := engine.RunBuffered(base, sim.BufferedConfig{
			Load: 1.0, Queue: v.queue, Lanes: v.lanes, Cycles: 3000, Warmup: 300,
		}, 4, engine.Config{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  lanes %d queue %d: throughput %.4f ± %.4f, p99 latency %3.0f cycles\n",
			v.lanes, v.queue, st.Throughput.Mean, st.Throughput.CI95(), st.LatencyP99.Mean)
	}

	// The scenario registry drives buffered injection too: a transpose
	// pattern thinned to 0.5 load versus plain Bernoulli at 0.5.
	fmt.Printf("\nbuffered baseline n=%d at load 0.5, pattern-driven injection:\n", n)
	for _, p := range []struct {
		name string
		tr   sim.Traffic
	}{
		{"bernoulli", sim.Bernoulli(0.5)},
		{"transpose", sim.Thinned(0.5, sim.Transpose())},
	} {
		st, err := engine.RunBuffered(base, sim.BufferedConfig{
			Queue: 4, Lanes: 2, Cycles: 3000, Warmup: 300, Pattern: p.tr,
		}, 4, engine.Config{Seed: 11})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s throughput %.4f ± %.4f, mean latency %6.2f cycles\n",
			p.name, st.Throughput.Mean, st.Throughput.CI95(), st.Latency.Mean)
	}
}
