// Simulation: the systems-level meaning of topological equivalence. The
// six classical networks, being isomorphic, are statistically identical
// under uniform traffic; the non-equivalent tail-cycle Banyan is a
// different machine. All runs go through min.Simulate, which shards
// waves across GOMAXPROCS workers with a deterministic rng stream per
// wave, so the numbers printed here do not depend on core count.
package main

import (
	"context"
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	const n = 6
	const waves = 400
	ctx := context.Background()

	fmt.Printf("uniform-traffic throughput, n=%d (N=%d), %d waves (mean ± 95%% CI):\n", n, 1<<n, waves)
	for _, name := range min.CatalogNames() {
		st, err := min.Simulate(ctx, min.MustBuild(name, n),
			min.WithWaves(waves), min.WithSeed(7))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %.4f ± %.4f\n", name, st.Throughput.Mean, st.Throughput.CI95)
	}

	tc, err := min.TailCycle(n)
	if err != nil {
		log.Fatal(err)
	}
	st, err := min.Simulate(ctx, tc, min.WithWaves(waves), min.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s %.4f ± %.4f   (Banyan but NOT baseline-equivalent)\n",
		"tail-cycle", st.Throughput.Mean, st.Throughput.CI95)

	// The named scenario catalog on one network: how each adversarial
	// pattern stresses the same hardware.
	base := min.MustBuild(min.Baseline, n)
	fmt.Printf("\nbaseline n=%d across the scenario catalog (%d waves each):\n", n, waves)
	for _, sc := range min.Scenarios() {
		st, err := min.Simulate(ctx, base,
			min.WithWaves(waves), min.WithSeed(7), min.WithScenario(sc.Name))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.4f ± %.4f\n", sc.Name, st.Throughput.Mean, st.Throughput.CI95)
	}

	// Buffered model: latency under increasing load, replicated runs.
	fmt.Printf("\nbuffered baseline n=%d: load sweep (queue 4, 3000 cycles, 4 reps):\n", n)
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		st, err := min.SimulateBuffered(ctx, base,
			min.WithLoad(load), min.WithQueue(4), min.WithCycles(3000), min.WithWarmup(300),
			min.WithReplications(4), min.WithSeed(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  load %.1f: throughput %.4f ± %.4f, latency %6.2f mean / %3.0f p99 cycles\n",
			load, st.Throughput.Mean, st.Throughput.CI95, st.Latency.Mean, st.LatencyP99.Mean)
	}

	// Multi-lane storage: at saturation, splitting the same buffer
	// budget into independent lanes bypasses head-of-line blocking.
	fmt.Printf("\nbuffered baseline n=%d at load 1.0, lanes x queue = 8 fixed:\n", n)
	for _, v := range []struct{ lanes, queue int }{{1, 8}, {2, 4}, {4, 2}} {
		st, err := min.SimulateBuffered(ctx, base,
			min.WithLoad(1.0), min.WithQueue(v.queue), min.WithLanes(v.lanes),
			min.WithCycles(3000), min.WithWarmup(300),
			min.WithReplications(4), min.WithSeed(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  lanes %d queue %d: throughput %.4f ± %.4f, p99 latency %3.0f cycles\n",
			v.lanes, v.queue, st.Throughput.Mean, st.Throughput.CI95, st.LatencyP99.Mean)
	}

	// The scenario registry drives buffered injection too: a transpose
	// pattern thinned to 0.5 load versus plain Bernoulli at 0.5.
	fmt.Printf("\nbuffered baseline n=%d at load 0.5, pattern-driven injection:\n", n)
	for _, name := range []string{"bernoulli", "transpose"} {
		st, err := min.SimulateBuffered(ctx, base,
			min.WithScenario(name), min.WithLoad(0.5),
			min.WithQueue(4), min.WithLanes(2), min.WithCycles(3000), min.WithWarmup(300),
			min.WithReplications(4), min.WithSeed(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s throughput %.4f ± %.4f, mean latency %6.2f cycles\n",
			name, st.Throughput.Mean, st.Throughput.CI95, st.Latency.Mean)
	}
}
