// Counterexample: the Banyan property alone does NOT imply baseline
// equivalence — the P window properties are essential. This example
// builds the tail-cycle Banyan, shows exactly which windows fail, and
// confirms with the exact oracle that no isomorphism exists.
package main

import (
	"fmt"
	"log"

	"minequiv/internal/ascii"
	"minequiv/internal/equiv"
	"minequiv/internal/randnet"
	"minequiv/internal/topology"
)

func main() {
	const n = 4
	g, err := randnet.TailCycleBanyan(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tail-cycle network: Baseline with the last connection replaced by")
	fmt.Println("the cycle y -> {y, y+1 mod h}:")
	fmt.Println()
	fmt.Print(ascii.Network(g, ascii.Options{OneBased: true}))

	banyan, _ := g.IsBanyan()
	fmt.Printf("\nbanyan: %v (every input still reaches every output exactly once)\n\n", banyan)

	fmt.Println("window properties:")
	fmt.Print(ascii.WindowResults(g.CheckAllWindows()))

	fmt.Println()
	fmt.Print(equiv.Check(g))

	// The oracle double-checks: no stage-respecting isomorphism at all.
	if _, found := equiv.FindIsomorphism(g, topology.Baseline(n)); found {
		log.Fatal("BUG: oracle found an isomorphism")
	}
	fmt.Println("\nexact search confirms: no isomorphism onto Baseline exists.")
}
