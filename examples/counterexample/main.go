// Counterexample: the Banyan property alone does NOT imply baseline
// equivalence — the P window properties are essential. This example
// builds the tail-cycle Banyan, shows exactly which windows fail, and
// confirms with the exact oracle that no isomorphism exists.
package main

import (
	"fmt"
	"log"

	"minequiv/min"
)

func main() {
	const n = 4
	tc, err := min.TailCycle(n)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tail-cycle network: Baseline with the last connection replaced by")
	fmt.Println("the cycle y -> {y, y+1 mod h}:")
	fmt.Println()
	fmt.Print(tc.Draw(min.DrawOptions{OneBased: true}))

	report := min.Check(tc)
	fmt.Printf("\nbanyan: %v (every input still reaches every output exactly once)\n\n", report.Banyan)

	fmt.Println("window properties:")
	for _, wc := range min.CheckAllWindows(tc) {
		fmt.Printf("  %s\n", wc)
	}

	fmt.Println()
	fmt.Print(report)

	// The exact oracle double-checks: no stage-respecting isomorphism
	// onto Baseline at all.
	eq, err := min.Equivalent(tc, min.MustBuild(min.Baseline, n))
	if err != nil {
		log.Fatal(err)
	}
	if eq {
		log.Fatal("BUG: oracle found an isomorphism")
	}
	fmt.Println("\nexact search confirms: no isomorphism onto Baseline exists.")
}
